//! Raw Linux syscall surface for the event-driven bridge backend.
//!
//! This file is the crate's **entire unsafe-FFI audit boundary**: every
//! `unsafe` block in `crates/svc` lives here (CI greps for exactly
//! that). The bindings are hand-declared against the stable Linux
//! syscall wrappers glibc/musl export — the no-new-dependencies rule
//! rules out the `libc` crate — and each wrapper below upholds the
//! narrow contract its syscall needs:
//!
//! * every pointer handed to the kernel is derived from a live Rust
//!   borrow that outlives the call (the call is synchronous; the
//!   kernel keeps no reference after return);
//! * every length passed is the length of the borrow it describes;
//! * file descriptors are owned by the RAII types in [`super`] and
//!   closed exactly once.
//!
//! Struct layouts mirror the kernel ABI for x86-64/aarch64 Linux:
//! `epoll_event` is packed on x86-64 only (a kernel quirk — the struct
//! predates the 64-bit port), and `msghdr` uses `size_t` for
//! `msg_iovlen`/`msg_controllen` per POSIX-on-glibc.
#![allow(unsafe_code)]
#![allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]

use std::io;
use std::net::SocketAddrV4;
use std::os::unix::io::RawFd;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;

const EPOLL_CLOEXEC: i32 = 0x8_0000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EFD_NONBLOCK: i32 = 0x800;
const EFD_CLOEXEC: i32 = 0x8_0000;
const MSG_DONTWAIT: i32 = 0x40;
const AF_INET: u16 = 2;

/// `struct iovec` — one scatter/gather segment.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct IoVec {
    pub base: *mut u8,
    pub len: usize,
}

/// `struct sockaddr_in` — IPv4 socket address, fields in network byte
/// order.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct SockAddrIn {
    pub family: u16,
    pub port_be: u16,
    pub addr_be: u32,
    pub zero: [u8; 8],
}

impl SockAddrIn {
    pub fn zeroed() -> SockAddrIn {
        SockAddrIn {
            family: 0,
            port_be: 0,
            addr_be: 0,
            zero: [0; 8],
        }
    }

    pub fn from_v4(addr: &SocketAddrV4) -> SockAddrIn {
        SockAddrIn {
            family: AF_INET,
            port_be: addr.port().to_be(),
            addr_be: u32::from_be_bytes(addr.ip().octets()).to_be(),
            zero: [0; 8],
        }
    }

    pub fn to_v4(self) -> SocketAddrV4 {
        SocketAddrV4::new(
            u32::from_be(self.addr_be).to_be_bytes().into(),
            u16::from_be(self.port_be),
        )
    }
}

/// `struct msghdr` (glibc layout: `size_t msg_iovlen`).
#[repr(C)]
#[derive(Clone, Copy)]
pub struct MsgHdr {
    pub name: *mut SockAddrIn,
    pub namelen: u32,
    pub iov: *mut IoVec,
    pub iovlen: usize,
    pub control: *mut u8,
    pub controllen: usize,
    pub flags: i32,
}

impl MsgHdr {
    pub fn zeroed() -> MsgHdr {
        MsgHdr {
            name: std::ptr::null_mut(),
            namelen: 0,
            iov: std::ptr::null_mut(),
            iovlen: 0,
            control: std::ptr::null_mut(),
            controllen: 0,
            flags: 0,
        }
    }
}

/// `struct mmsghdr` — one slot of a `recvmmsg`/`sendmmsg` vector.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct MMsgHdr {
    pub hdr: MsgHdr,
    pub len: u32,
}

impl MMsgHdr {
    pub fn zeroed() -> MMsgHdr {
        MMsgHdr {
            hdr: MsgHdr::zeroed(),
            len: 0,
        }
    }
}

// SAFETY: these are plain-old-data syscall descriptors. The pointers
// inside are dead between calls — [`super::recv_batch`] /
// [`super::send_batch`] rebuild every one from live borrows of the
// owning arena immediately before the (synchronous) syscall that
// consumes them — so moving the containing arena across threads moves
// no aliased state.
unsafe impl Send for IoVec {}
unsafe impl Send for MsgHdr {}
unsafe impl Send for MMsgHdr {}

/// `struct epoll_event`. Packed on x86-64 (kernel ABI quirk).
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub token: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn recvmmsg(
        fd: i32,
        msgvec: *mut MMsgHdr,
        vlen: u32,
        flags: i32,
        timeout: *mut core::ffi::c_void,
    ) -> i32;
    fn sendmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
}

fn rc_to_result(rc: i32) -> io::Result<i32> {
    if rc < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(rc)
    }
}

/// Create a close-on-exec epoll instance.
pub fn epoll_create() -> io::Result<RawFd> {
    // SAFETY: no pointers; returns a new fd or -1.
    rc_to_result(unsafe { epoll_create1(EPOLL_CLOEXEC) })
}

fn ctl(epfd: RawFd, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events, token };
    // SAFETY: `ev` lives across the synchronous call; DEL ignores it.
    rc_to_result(unsafe { epoll_ctl(epfd, op, fd, &mut ev) }).map(|_| ())
}

pub fn epoll_add(epfd: RawFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    ctl(epfd, EPOLL_CTL_ADD, fd, events, token)
}

pub fn epoll_mod(epfd: RawFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    ctl(epfd, EPOLL_CTL_MOD, fd, events, token)
}

pub fn epoll_del(epfd: RawFd, fd: RawFd) -> io::Result<()> {
    ctl(epfd, EPOLL_CTL_DEL, fd, 0, 0)
}

/// Wait for events; `timeout_ms < 0` blocks indefinitely. Returns how
/// many slots of `events` were filled.
pub fn epoll_pwait(epfd: RawFd, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    let cap = i32::try_from(events.len()).unwrap_or(i32::MAX).max(1);
    // SAFETY: `events` is a live mutable borrow of at least `cap`
    // slots for the duration of the call.
    let rc = unsafe { epoll_wait(epfd, events.as_mut_ptr(), cap, timeout_ms) };
    rc_to_result(rc).map(|n| n as usize)
}

/// Create a nonblocking close-on-exec eventfd.
pub fn eventfd_create() -> io::Result<RawFd> {
    // SAFETY: no pointers.
    rc_to_result(unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) })
}

/// Add 1 to an eventfd counter (wakes any epoll watching it).
pub fn eventfd_signal(fd: RawFd) -> io::Result<()> {
    let one = 1u64.to_ne_bytes();
    // SAFETY: `one` is 8 live bytes, the size an eventfd write needs.
    let rc = unsafe { write(fd, one.as_ptr(), one.len()) };
    if rc < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(())
    }
}

/// Reset an eventfd counter to 0 (ignores "already empty").
pub fn eventfd_drain(fd: RawFd) {
    let mut buf = [0u8; 8];
    // SAFETY: `buf` is 8 live bytes; EAGAIN on empty is fine.
    let _ = unsafe { read(fd, buf.as_mut_ptr(), buf.len()) };
}

/// Close an fd owned by one of the RAII types in [`super`].
pub fn close_fd(fd: RawFd) {
    // SAFETY: the caller owns `fd` and calls this exactly once (Drop).
    let _ = unsafe { close(fd) };
}

/// Nonblocking `recvmmsg`. The caller guarantees every pointer inside
/// `msgs` (names, iovecs, buffers) refers to storage that is live and
/// exclusively borrowed for the duration of the call — the
/// [`super::RecvArena`] rebuilds them from its own buffers immediately
/// before calling. Returns the number of slots filled.
pub fn recvmmsg_nb(fd: RawFd, msgs: &mut [MMsgHdr]) -> io::Result<usize> {
    let vlen = u32::try_from(msgs.len()).unwrap_or(u32::MAX);
    // SAFETY: slot pointers are live per this function's contract; the
    // call is synchronous and the kernel holds no reference after it.
    let rc = unsafe {
        recvmmsg(
            fd,
            msgs.as_mut_ptr(),
            vlen,
            MSG_DONTWAIT,
            std::ptr::null_mut(),
        )
    };
    rc_to_result(rc).map(|n| n as usize)
}

/// Nonblocking `sendmmsg`; same pointer contract as [`recvmmsg_nb`].
/// Returns how many messages were fully sent (datagram sockets send
/// each message atomically).
pub fn sendmmsg_nb(fd: RawFd, msgs: &mut [MMsgHdr]) -> io::Result<usize> {
    let vlen = u32::try_from(msgs.len()).unwrap_or(u32::MAX);
    // SAFETY: as for recvmmsg_nb — pointers live, call synchronous.
    let rc = unsafe { sendmmsg(fd, msgs.as_mut_ptr(), vlen, MSG_DONTWAIT) };
    rc_to_result(rc).map(|n| n as usize)
}
