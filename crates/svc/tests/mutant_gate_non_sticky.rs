//! Bug-injection self-test: the seeded non-sticky gate (`wake`
//! notifies without setting the pending flag) must be caught by weave
//! — a wake landing anywhere around the waiter's check-then-park is
//! simply gone — with a deterministically replaying token.
//!
//! One mutant per test binary: the toggles are process-global.
#![cfg(all(feature = "weave", feature = "mutants"))]

use std::sync::atomic::Ordering;
use std::time::Duration;

use svc::gate::{mutants, WakeGate};

/// Same invariant as `tests/weave_drain.rs`: a wake must be observed,
/// either by the wait returning woken or by staying pending. The
/// non-sticky mutant leaves no trace of the wake, so the invariant
/// fails and weave pins the schedule.
fn model() {
    let gate = WakeGate::new();
    let signal = gate.clone();
    let waker = weave::thread::spawn(move || signal.wake());
    let woken = gate.wait_timeout(Duration::from_millis(1));
    waker.join().expect("waker panicked");
    assert!(woken || gate.consume(), "wake was lost");
}

#[test]
fn weave_detects_mutant_non_sticky_gate_with_replayable_token() {
    mutants::GATE_NON_STICKY.store(true, Ordering::SeqCst);
    let cfg = weave::Config::default();
    let report = weave::explore(cfg.clone(), model);
    eprintln!(
        "weave[mutant_gate_non_sticky]: {} schedules explored ({} pruned)",
        report.schedules, report.pruned
    );
    let failure = report.failure.expect("weave must catch the lost wake");
    assert_eq!(failure.kind, weave::FailureKind::Panic);
    eprintln!("counterexample: {} — {}", failure.token, failure.message);
    for _ in 0..2 {
        let again = weave::replay(cfg.clone(), &failure.token, model)
            .expect("replaying the counterexample must fail again");
        assert_eq!(again.kind, failure.kind);
        assert_eq!(again.token, failure.token, "replay must be deterministic");
    }
}
