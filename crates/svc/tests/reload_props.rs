#![allow(clippy::unwrap_used)] // test code
//! Property tests for hot reload semantics (`POST /config`):
//!
//! 1. a **rejected** reload (absint refusal) is invisible — the live
//!    rollout table, the program cache, the metrics JSON, and every
//!    future emission are byte-identical to a service that never saw
//!    the request;
//! 2. an **accepted** reload changes emissions only for flows opened
//!    after it — live flows keep the program they classified to.
//!
//! Both run against [`svc::Core`] — the exact production pump, minus
//! sockets — so the properties hold for `cay serve` by construction.

use dplane::{DplaneConfig, SeedMode, VecIo};
use harness::deploy::{demo_geo_entries, RolloutTable};
use packet::{Packet, TcpFlags};
use proptest::prelude::*;
use std::sync::atomic::Ordering;
use svc::{apply_config, Core, CoreConfig};

const SERVER: [u8; 4] = [93, 184, 216, 34];

fn core_cfg() -> CoreConfig {
    let geo = demo_geo_entries();
    CoreConfig {
        dplane: DplaneConfig {
            seed: SeedMode::PerFlow(0x0D1A),
            ..DplaneConfig::default()
        },
        server_addr: SERVER,
        protocol: appproto::AppProtocol::Http,
        rollout: RolloutTable::from_geo(&geo, appproto::AppProtocol::Http),
        geo,
    }
}

fn tcp_pkt(src: [u8; 4], sport: u16, dst: [u8; 4], dport: u16, flags: TcpFlags) -> Packet {
    let mut p = Packet::tcp(src, sport, dst, dport, flags, 1, 0, vec![]);
    p.finalize();
    p
}

/// SYN + SYN/ACK for one client — opens the flow and fires the
/// `[TCP:flags:SA]` trigger every deployed strategy uses.
fn open_flow(client: [u8; 4], port: u16) -> Vec<(u64, Packet)> {
    vec![
        (10, tcp_pkt(client, port, SERVER, 80, TcpFlags::SYN)),
        (20, tcp_pkt(SERVER, 80, client, port, TcpFlags::SYN_ACK)),
    ]
}

fn emitted_bytes(io: &VecIo) -> Vec<Vec<u8>> {
    io.output.iter().map(|(_, p)| p.serialize_raw()).collect()
}

/// A strategy the abstract interpreter refuses: `depth` nested
/// duplicates grow the packet stack past the verifier's 128-slot
/// bound (refusal fires at depth ≥ 127).
fn stack_bomb(depth: usize) -> String {
    let mut tree = "duplicate".to_string();
    for _ in 0..depth {
        tree = format!("duplicate({tree},)");
    }
    format!("[TCP:flags:SA]-{tree}-| \\/")
}

/// A verifiable strategy distinct from every geo top pick: cap the
/// receive window to 1 (single emission, no duplicates).
const WINDOW_CAP: &str = "[TCP:flags:SA]-tamper{TCP:window:replace:1}-| \\/";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Refused reloads are invisible at every observable layer.
    #[test]
    fn rejected_reload_is_byte_invisible(
        clients in prop::collection::vec(2u8..250, 1..5),
        depth in 127usize..140,
        percent in 1u8..=100,
    ) {
        // Twin cores: `suspect` suffers the rejected reload between
        // two workload halves, `control` never sees it.
        let mut suspect = Core::new(core_cfg());
        let mut control = Core::new(core_cfg());
        let workload = |ports_base: u16| -> Vec<(u64, Packet)> {
            clients.iter().enumerate().flat_map(|(i, &c)| {
                open_flow([10, 7, 0, c], ports_base + u16::try_from(i).unwrap())
            }).collect()
        };

        let mut io_s = VecIo::new(workload(41_000));
        let mut io_c = VecIo::new(workload(41_000));
        suspect.pump(&mut io_s);
        control.pump(&mut io_c);

        let before_json = suspect.offline_report().to_json();
        let table_before =
            std::sync::Arc::clone(&suspect.shared.rollout.read().unwrap());
        let config = format!("10.7.0.0/16 {percent} {}", stack_bomb(depth));
        let outcome = apply_config(&suspect.shared, &config);
        prop_assert!(!outcome.applied, "the stack bomb must be refused");
        prop_assert_eq!(outcome.status, 422);
        prop_assert!(outcome.body.contains("\"applied\":false"), "{}", outcome.body);
        prop_assert!(outcome.body.contains("absint refused"), "{}", outcome.body);

        // Invisible: same table object, same metrics bytes, counter
        // bumped only on the svc side.
        prop_assert!(std::sync::Arc::ptr_eq(
            &table_before,
            &suspect.shared.rollout.read().unwrap()
        ));
        prop_assert_eq!(&suspect.offline_report().to_json(), &before_json);
        prop_assert_eq!(suspect.shared.reload_rejects.load(Ordering::Relaxed), 1);
        prop_assert_eq!(suspect.shared.reloads.load(Ordering::Relaxed), 0);

        // And the future is unchanged: a second workload half (new
        // ports → new flows) emits identical bytes on both twins.
        let mut io_s2 = VecIo::new(workload(42_000));
        let mut io_c2 = VecIo::new(workload(42_000));
        suspect.pump(&mut io_s2);
        control.pump(&mut io_c2);
        prop_assert_eq!(emitted_bytes(&io_s2), emitted_bytes(&io_c2));
        prop_assert_eq!(
            suspect.offline_report().to_json(),
            control.offline_report().to_json()
        );
    }

    /// Accepted reloads swap strategies for *new* flows only.
    #[test]
    fn accepted_reload_changes_only_new_flows(
        c1 in 2u8..120,
        c2 in 130u8..250,
    ) {
        let client1 = [10, 7, 0, c1];
        let client2 = [10, 7, 0, c2];
        let mut core = Core::new(core_cfg());
        let mut twin = Core::new(core_cfg()); // never reloaded

        // Open flow 1 on both before the reload.
        let mut io_a = VecIo::new(open_flow(client1, 40_001));
        let mut io_b = VecIo::new(open_flow(client1, 40_001));
        core.pump(&mut io_a);
        twin.pump(&mut io_b);
        prop_assert_eq!(emitted_bytes(&io_a), emitted_bytes(&io_b));

        let config = format!("10.7.0.0/16 100 {WINDOW_CAP}");
        let outcome = apply_config(&core.shared, &config);
        prop_assert!(outcome.applied, "{}", outcome.body);
        prop_assert_eq!(outcome.status, 200);

        // The live flow keeps its pre-reload program: a retransmitted
        // SYN/ACK (same 4-tuple) rewrites identically on both cores.
        let retrans = vec![(60, tcp_pkt(SERVER, 80, client1, 40_001, TcpFlags::SYN_ACK))];
        let mut io_a2 = VecIo::new(retrans.clone());
        let mut io_b2 = VecIo::new(retrans);
        core.pump(&mut io_a2);
        twin.pump(&mut io_b2);
        prop_assert_eq!(emitted_bytes(&io_a2), emitted_bytes(&io_b2));

        // A flow opened after the reload gets the new strategy — the
        // reference is a core *started* with the posted table.
        let mut ref_cfg = core_cfg();
        ref_cfg.rollout = RolloutTable::parse(&config).unwrap();
        let mut reference = Core::new(ref_cfg);
        let mut io_new = VecIo::new(open_flow(client2, 40_002));
        let mut io_ref = VecIo::new(open_flow(client2, 40_002));
        core.pump(&mut io_new);
        reference.pump(&mut io_ref);
        prop_assert_eq!(emitted_bytes(&io_new), emitted_bytes(&io_ref));

        // ...and it differs from the old behavior (the twin's).
        let mut io_old = VecIo::new(open_flow(client2, 40_002));
        twin.pump(&mut io_old);
        prop_assert_ne!(emitted_bytes(&io_new), emitted_bytes(&io_old));
    }
}

/// The censor-model gate: shipping a provably inert strategy to the
/// prefix it was aimed at is refused (deterministic censors only — the
/// GFW's stochastic model never yields an inert proof).
#[test]
fn provably_inert_reload_is_refused_for_governed_prefix() {
    let core = Core::new(core_cfg());
    // `duplicate(,)` is the identity twice: provably inert against
    // Airtel, which governs the demo table's 10.91.0.0/16 (India).
    let config = "10.91.0.0/16 100 [TCP:flags:SA]-duplicate(,)-| \\/";
    let outcome = apply_config(&core.shared, config);
    assert!(!outcome.applied, "{}", outcome.body);
    assert_eq!(outcome.status, 422);
    // Refusal names the gate that fired (futility lint or the
    // censor-model inertness proof — both catch do-nothing rollouts).
    assert!(
        outcome.body.contains("inert") || outcome.body.contains("futile"),
        "{}",
        outcome.body
    );
    // The same strategy aimed at a prefix no censor governs is let
    // through only if it survives the futility lint; aimed where no
    // geo entry exists, the censor gate cannot fire.
    assert_eq!(core.shared.reload_rejects.load(Ordering::Relaxed), 1);
}
