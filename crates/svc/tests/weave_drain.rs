//! Weave model tests for the service's wake gate: the check-then-park
//! handshake behind [`svc::gate::WakeGate`] (and therefore behind the
//! bridge's poll-fallback wait and the drain/shutdown kicks) never
//! loses a wakeup, in **every** interleaving.
//!
//! Run with `cargo test -p svc --features weave`. Without the feature
//! this file compiles to nothing.
#![cfg(feature = "weave")]

use std::time::Duration;

use svc::gate::WakeGate;

/// The invariant that makes shutdown reliable: however the waker's
/// `wake` interleaves with the waiter's check-then-park, the wake is
/// observed — either the wait returns woken, or (when the waiter's
/// timeout fired first) the wake is still pending afterwards. A
/// non-sticky gate violates this whenever the wake lands between the
/// waiter's pending-check and its park.
#[test]
fn wake_is_never_lost_across_check_then_park() {
    let report = weave::check(weave::Config::default(), || {
        let gate = WakeGate::new();
        let signal = gate.clone();
        let waker = weave::thread::spawn(move || signal.wake());
        let woken = gate.wait_timeout(Duration::from_millis(1));
        waker.join().expect("waker panicked");
        assert!(woken || gate.consume(), "wake was lost");
    });
    eprintln!(
        "weave[gate_no_lost_wake]: {} schedules explored ({} pruned)",
        report.schedules, report.pruned
    );
    assert!(report.failure.is_none());
    assert!(report.exhausted, "two-thread gate model must be exhausted");
}

/// Stickiness, single-threaded corner: a wake that arrives before the
/// wait starts is kept, consumed exactly once, and gone afterwards —
/// eventfd semantics, which the epoll drain path relies on.
#[test]
fn early_wake_is_sticky_and_consumed_once() {
    let report = weave::check(weave::Config::default(), || {
        let gate = WakeGate::new();
        gate.wake();
        gate.wake(); // coalesces, like writes to an eventfd
        assert!(gate.wait_timeout(Duration::from_millis(1)), "wake kept");
        assert!(!gate.consume(), "wake consumed exactly once");
    });
    eprintln!(
        "weave[gate_sticky]: {} schedules explored ({} pruned)",
        report.schedules, report.pruned
    );
    assert!(report.failure.is_none());
}

/// The drain loop shape from the bridge: a worker parks repeatedly
/// until the shutdown kick arrives. Whatever schedule the kick lands
/// on, the worker terminates — no lost-wakeup hang, no missed flag.
#[test]
fn shutdown_kick_always_terminates_the_drain_loop() {
    let report = weave::check(weave::Config::default(), || {
        let gate = WakeGate::new();
        let stop = std::sync::Arc::new(weave::sync::atomic::AtomicBool::new(false));
        let kick = {
            let gate = gate.clone();
            let stop = std::sync::Arc::clone(&stop);
            weave::thread::spawn(move || {
                stop.store(true, weave::sync::atomic::Ordering::Release);
                gate.wake();
            })
        };
        while !stop.load(weave::sync::atomic::Ordering::Acquire) {
            gate.wait_timeout(Duration::from_millis(1));
        }
        kick.join().expect("kicker panicked");
    });
    eprintln!(
        "weave[gate_shutdown]: {} schedules explored ({} pruned)",
        report.schedules, report.pruned
    );
    assert!(report.failure.is_none());
}
