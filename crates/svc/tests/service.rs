#![allow(clippy::unwrap_used)] // test code
//! End-to-end service tests on loopback sockets.
//!
//! The load-bearing assertion is **live/offline equivalence**: the
//! frames observed at the echo origin and at the client of a running
//! [`svc::Service`] are byte-identical to what the same [`svc::Core`]
//! produces offline over a [`dplane::VecIo`], and the `/metrics`
//! counters match the offline [`dplane::MetricsReport`] byte-for-byte
//! once the service-only fields are stripped. The socket front end is
//! a transport, not a semantics.

use dplane::{DplaneConfig, SeedMode, VecIo};
use harness::deploy::{demo_geo_entries, RolloutTable};
use packet::{Packet, TcpFlags};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::time::{Duration, Instant};
use svc::{BackendChoice, BridgeConfig, Core, CoreConfig, ServeConfig, Service};

const SERVER: [u8; 4] = [93, 184, 216, 34];

fn loopback() -> SocketAddr {
    "127.0.0.1:0".parse().unwrap()
}

/// Every backend this platform can run (forced, not `Auto`, so each
/// test run exercises a known code path).
fn backends() -> Vec<BackendChoice> {
    if svc::sys::EPOLL_SUPPORTED {
        vec![BackendChoice::Epoll, BackendChoice::Poll]
    } else {
        vec![BackendChoice::Poll]
    }
}

fn backend_name(b: BackendChoice) -> &'static str {
    match b {
        BackendChoice::Epoll => "epoll",
        _ => "poll",
    }
}

/// Pull one unsigned integer field out of a flat JSON body.
fn json_u64(body: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = body
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {body}"));
    body[at + pat.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

fn core_cfg() -> CoreConfig {
    let geo = demo_geo_entries();
    CoreConfig {
        dplane: DplaneConfig {
            seed: SeedMode::PerFlow(0x0D1A),
            ..DplaneConfig::default()
        },
        server_addr: SERVER,
        protocol: appproto::AppProtocol::Http,
        rollout: RolloutTable::from_geo(&geo, appproto::AppProtocol::Http),
        geo,
    }
}

fn start_service_with(backend: BackendChoice) -> (Service, UdpSocket) {
    let origin = UdpSocket::bind(loopback()).unwrap();
    origin
        .set_read_timeout(Some(Duration::from_secs(3)))
        .unwrap();
    let service = Service::start(ServeConfig {
        bridge: BridgeConfig {
            udp: loopback(),
            tcp: None,
            upstream: origin.local_addr().unwrap(),
            backend,
        },
        control: loopback(),
        core: core_cfg(),
    })
    .unwrap();
    (service, origin)
}

fn start_service() -> (Service, UdpSocket) {
    start_service_with(BackendChoice::Auto)
}

/// One HTTP request against the control plane; returns (status, body).
fn http(addr: SocketAddr, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    http(addr, &format!("GET {path} HTTP/1.1\r\nHost: cay\r\n\r\n"))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    http(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: cay\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

#[allow(clippy::too_many_arguments)]
fn tcp_pkt(
    src: [u8; 4],
    sport: u16,
    dst: [u8; 4],
    dport: u16,
    flags: TcpFlags,
    seq: u32,
    ack: u32,
    payload: Vec<u8>,
) -> Packet {
    let mut p = Packet::tcp(src, sport, dst, dport, flags, seq, ack, payload);
    p.finalize();
    p
}

/// The canonical four-packet exchange: SYN in, SYN/ACK out (the
/// strategy trigger), request in, response out.
fn exchange(client: [u8; 4], port: u16) -> [Packet; 4] {
    [
        tcp_pkt(client, port, SERVER, 80, TcpFlags::SYN, 1, 0, vec![]),
        tcp_pkt(SERVER, 80, client, port, TcpFlags::SYN_ACK, 100, 2, vec![]),
        tcp_pkt(
            client,
            port,
            SERVER,
            80,
            TcpFlags::PSH_ACK,
            2,
            101,
            b"GET / HTTP/1.1\r\nHost: example.com\r\n\r\n".to_vec(),
        ),
        tcp_pkt(
            SERVER,
            80,
            client,
            port,
            TcpFlags::PSH_ACK,
            101,
            40,
            b"HTTP/1.1 200 OK\r\n\r\nhi".to_vec(),
        ),
    ]
}

/// Collect datagrams off a socket until it stays quiet for `settle`.
fn drain_socket(sock: &UdpSocket, settle: Duration) -> Vec<Vec<u8>> {
    let mut frames = Vec::new();
    let mut buf = [0u8; 65536];
    sock.set_read_timeout(Some(settle)).unwrap();
    while let Ok((n, _)) = sock.recv_from(&mut buf) {
        frames.push(buf[..n].to_vec());
    }
    frames
}

#[test]
fn live_loopback_is_byte_identical_to_offline_vecio() {
    // The same assertion must hold on both socket backends — the data
    // plane may not be able to tell them apart.
    for backend in backends() {
        live_offline_identity(backend);
    }
}

fn live_offline_identity(backend: BackendChoice) {
    let (service, origin) = start_service_with(backend);
    let client_sock = UdpSocket::bind(loopback()).unwrap();
    let client = [10, 7, 0, 2]; // China prefix: strategy applies
    let pkts = exchange(client, 40001);
    let bridge = service.udp_addr;

    // Drive the exchange stepwise so packet order is deterministic:
    // wait out each packet's emissions before sending the next.
    let mut at_origin: Vec<Vec<u8>> = Vec::new();
    let mut at_client: Vec<Vec<u8>> = Vec::new();
    for pkt in &pkts {
        let from_server = pkt.ip.src == SERVER;
        let sock = if from_server { &origin } else { &client_sock };
        sock.send_to(&pkt.serialize_raw(), bridge).unwrap();
        // The strategy may emit to either side; settle both sockets.
        at_origin.extend(drain_socket(&origin, Duration::from_millis(200)));
        at_client.extend(drain_socket(&client_sock, Duration::from_millis(200)));
    }

    // Offline oracle: the identical Core over a VecIo.
    let mut core = Core::new(core_cfg());
    let mut io = VecIo::new(
        pkts.iter()
            .cloned()
            .enumerate()
            .map(|(i, p)| (i as u64 * 10, p)),
    );
    assert_eq!(core.pump(&mut io), 4);
    let offline_to_server: Vec<Vec<u8>> = io
        .output
        .iter()
        .filter(|(_, p)| p.ip.dst == SERVER)
        .map(|(_, p)| p.serialize_raw())
        .collect();
    let offline_to_client: Vec<Vec<u8>> = io
        .output
        .iter()
        .filter(|(_, p)| p.ip.dst == client)
        .map(|(_, p)| p.serialize_raw())
        .collect();
    assert!(
        !offline_to_client.is_empty(),
        "the China strategy must rewrite the outbound side"
    );
    assert_eq!(at_origin, offline_to_server, "frames at the origin");
    assert_eq!(at_client, offline_to_client, "frames at the client");

    // /metrics equals the offline report byte-for-byte once the
    // service-only (presence-based) fields are stripped.
    let offline_json = core.offline_report().to_json();
    let deadline = Instant::now() + Duration::from_secs(3);
    let mut live_stripped = String::new();
    while Instant::now() < deadline {
        let (status, body) = get(service.control_addr, "/metrics");
        assert_eq!(status, 200);
        let json = body.trim_end();
        live_stripped = match json.find(",\"uptime_ms\":") {
            Some(cut) => format!("{}}}", &json[..cut]),
            None => json.to_string(),
        };
        if live_stripped == offline_json {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        live_stripped, offline_json,
        "live /metrics vs offline report ({backend:?})"
    );

    // /status names the backend actually running.
    let (_, body) = get(service.control_addr, "/status");
    assert!(
        body.contains(&format!("\"backend\":\"{}\"", backend_name(backend))),
        "{body}"
    );

    // Graceful shutdown: drain, flush, exit — both threads join.
    let (status, body) = post(service.control_addr, "/shutdown", "");
    assert_eq!((status, body.trim_end()), (200, "{\"draining\":true}"));
    let report = service.join();
    assert_eq!(report.totals().packets, 4);
    assert!(report.uptime_ms.is_some(), "final snapshot is service-path");
}

#[test]
fn control_plane_serves_operator_endpoints() {
    let (service, _origin) = start_service();
    let ctl = service.control_addr;

    let (status, body) = get(ctl, "/ready");
    assert_eq!((status, body.trim_end()), (200, "{\"ready\":true}"));

    let (status, body) = get(ctl, "/status");
    assert_eq!(status, 200);
    assert!(body.contains("\"service\":\"cay-serve\""), "{body}");
    assert!(body.contains("\"rollout_rules\":4"), "{body}");
    assert!(body.contains("\"reload_rejects\":0"), "{body}");

    let (status, body) = get(ctl, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("\"uptime_ms\":"), "{body}");
    assert!(body.contains("\"ingest_pps\":"), "{body}");

    let (status, body) = get(ctl, "/metrics?format=prometheus");
    assert_eq!(status, 200);
    assert!(body.contains("# TYPE cay_packets_total counter"), "{body}");
    assert!(body.contains("cay_uptime_ms "), "{body}");

    let (status, _) = get(ctl, "/nope");
    assert_eq!(status, 404);

    // A config that does not parse: 400, counted, nothing applied.
    let (status, body) = post(ctl, "/config", "10.7.0.0/16 999 \\/");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"applied\":false"), "{body}");
    let (_, body) = get(ctl, "/status");
    assert!(body.contains("\"reload_rejects\":1"), "{body}");
    assert!(body.contains("\"reloads\":0"), "{body}");

    // A config that parses and verifies: applied, rule count changes.
    let good = "10.7.0.0/16 60 [TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},)-| \\/\n\
                10.7.0.0/16 40 [TCP:flags:SA]-duplicate(tamper{TCP:ack:corrupt},)-| \\/\n";
    let (status, body) = post(ctl, "/config", good);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"applied\":true"), "{body}");
    assert!(body.contains("\"verified\":true"), "{body}");
    let (_, body) = get(ctl, "/status");
    assert!(body.contains("\"reloads\":1"), "{body}");
    assert!(body.contains("\"rollout_rules\":1"), "{body}");

    // Shutdown flips readiness while the control plane still answers.
    let (status, _) = post(ctl, "/shutdown", "");
    assert_eq!(status, 200);
    let (status, body) = get(ctl, "/ready");
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("\"draining\":true"), "{body}");
    let report = service.join();
    assert_eq!(report.totals().packets, 0, "no traffic was driven");
}

#[test]
fn tcp_front_end_round_trips_frames() {
    let origin = UdpSocket::bind(loopback()).unwrap();
    origin
        .set_read_timeout(Some(Duration::from_secs(3)))
        .unwrap();
    let service = Service::start(ServeConfig {
        bridge: BridgeConfig {
            udp: loopback(),
            tcp: Some(loopback()),
            upstream: origin.local_addr().unwrap(),
            backend: BackendChoice::Auto,
        },
        control: loopback(),
        core: core_cfg(),
    })
    .unwrap();
    let taddr = service.tcp_addr.unwrap();
    let mut stream = TcpStream::connect(taddr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(3)))
        .unwrap();
    // An India-prefix client over the TCP front end.
    let client = [10, 91, 0, 7];
    let pkts = exchange(client, 40100);
    let send = |stream: &mut TcpStream, pkt: &Packet| {
        let bytes = pkt.serialize_raw();
        let mut msg = (u32::try_from(bytes.len()).unwrap()).to_be_bytes().to_vec();
        msg.extend_from_slice(&bytes);
        stream.write_all(&msg).unwrap();
    };
    send(&mut stream, &pkts[0]); // SYN via TCP stream
    let fwd = drain_socket(&origin, Duration::from_millis(300));
    assert_eq!(fwd.len(), 1, "SYN forwarded upstream");
    // The origin answers over UDP; the reply routes back down the
    // learned TCP connection.
    origin
        .send_to(&pkts[1].serialize_raw(), service.udp_addr)
        .unwrap();
    let mut hdr = [0u8; 4];
    stream.read_exact(&mut hdr).unwrap();
    let len = u32::from_be_bytes(hdr) as usize;
    let mut frame = vec![0u8; len];
    stream.read_exact(&mut frame).unwrap();
    let got = Packet::parse(&frame).unwrap();
    assert_eq!(got.ip.dst, client);
    service.shutdown();
    let report = service.join();
    assert!(report.totals().packets >= 2);
}

/// A TCP peer that reads nothing while the origin floods frames at it
/// must not lose, reorder, or corrupt a single frame: the egress queue
/// absorbs what the socket buffer refuses (EPOLLOUT on the epoll
/// backend, retry-next-flush on the poll backend), and the counters
/// record that backpressure happened.
#[test]
fn tcp_backpressure_preserves_order_without_loss() {
    for backend in backends() {
        let origin = UdpSocket::bind(loopback()).unwrap();
        origin
            .set_read_timeout(Some(Duration::from_secs(3)))
            .unwrap();
        let service = Service::start(ServeConfig {
            bridge: BridgeConfig {
                udp: loopback(),
                tcp: Some(loopback()),
                upstream: origin.local_addr().unwrap(),
                backend,
            },
            control: loopback(),
            core: core_cfg(),
        })
        .unwrap();
        let taddr = service.tcp_addr.unwrap();
        let mut stream = TcpStream::connect(taddr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();

        // A client outside every geo prefix: no strategy applies, so
        // the plane passes frames through byte-identically and the
        // received stream can be compared against the sent bytes.
        let client = [172, 16, 0, 8];
        let syn = tcp_pkt(client, 41000, SERVER, 80, TcpFlags::SYN, 1, 0, vec![]);
        let bytes = syn.serialize_raw();
        let mut msg = (u32::try_from(bytes.len()).unwrap()).to_be_bytes().to_vec();
        msg.extend_from_slice(&bytes);
        stream.write_all(&msg).unwrap();
        let fwd = drain_socket(&origin, Duration::from_millis(300));
        assert_eq!(fwd.len(), 1, "route-teaching SYN forwarded ({backend:?})");

        // Flood: far more data toward the unread TCP connection than
        // the kernel socket buffers can hold, so the bridge must queue.
        const FRAMES: usize = 1024;
        const PAYLOAD: usize = 16 * 1024;
        let mut expected: Vec<Vec<u8>> = Vec::with_capacity(FRAMES);
        for i in 0..FRAMES {
            let mut payload = vec![u8::try_from(i % 251).unwrap(); PAYLOAD];
            payload[..4].copy_from_slice(&(u32::try_from(i).unwrap()).to_be_bytes());
            let pkt = tcp_pkt(
                SERVER,
                80,
                client,
                41000,
                TcpFlags::PSH_ACK,
                100 + u32::try_from(i).unwrap(),
                2,
                payload,
            );
            let raw = pkt.serialize_raw();
            origin.send_to(&raw, service.udp_addr).unwrap();
            expected.push(raw);
            // Pace the UDP ingress so the bridge's receive buffer (not
            // under test here) never overflows; the TCP egress side
            // still backs up because nothing is reading.
            if i % 2 == 1 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }

        // Now read everything back: every frame, in order, bit-equal.
        for want in &expected {
            let mut hdr = [0u8; 4];
            stream.read_exact(&mut hdr).unwrap();
            let len = u32::from_be_bytes(hdr) as usize;
            let mut frame = vec![0u8; len];
            stream.read_exact(&mut frame).unwrap();
            assert_eq!(&frame, want, "frame loss/reorder/corruption ({backend:?})");
        }

        // The counters saw the backpressure and nothing was dropped.
        let deadline = Instant::now() + Duration::from_secs(3);
        let mut body = get(service.control_addr, "/status").1;
        while json_u64(&body, "egress_backpressure_events") == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
            body = get(service.control_addr, "/status").1;
        }
        assert!(
            json_u64(&body, "egress_backpressure_events") > 0,
            "a full socket buffer must be observable ({backend:?}): {body}"
        );
        assert_eq!(json_u64(&body, "unroutable"), 0, "{body}");
        assert!(
            body.contains(&format!("\"backend\":\"{}\"", backend_name(backend))),
            "{body}"
        );
        service.shutdown();
        let report = service.join();
        assert_eq!(
            report.totals().packets,
            u64::try_from(FRAMES).unwrap() + 1,
            "{backend:?}"
        );
    }
}
