//! # netsim — deterministic discrete-event network simulator
//!
//! The measurement substrate for the whole reproduction. The paper ran
//! its experiments over real Internet paths crossing real censors; we
//! run them over a simulated path
//!
//! ```text
//!   client ──(hops, latency)── middlebox ──(hops, latency)── server
//! ```
//!
//! with the properties every §5 mechanism actually depends on:
//!
//! * **deterministic ordering** — events are processed in (time, FIFO)
//!   order, so an experiment with a fixed RNG seed replays exactly;
//! * **TTL semantics** — each hop decrements TTL; packets whose TTL
//!   expires before the middlebox or the far endpoint silently die
//!   (this is what TTL-limited probes and insertion packets exploit);
//! * **on-path vs in-path** — a [`Middlebox`] verdict may forward,
//!   drop (in-path only, e.g. Iran/Kazakhstan), and inject packets
//!   toward either end (on-path RST injection, block pages);
//! * **full trace capture** — every send, delivery, forward, drop,
//!   injection, and TTL death is recorded for waterfall rendering and
//!   assertions.
//!
//! Each simulation is single-threaded on purpose: determinism is a
//! core requirement (seeded success-rate experiments, GA fitness), and
//! the workloads are tiny (tens of packets per connection).
//! Parallelism lives one layer up — `harness::pool` runs many
//! independent seeded simulations across worker threads, which is why
//! [`Endpoint`] and [`Middlebox`] carry `Send` supertraits.

pub mod event;
pub mod fault;
pub mod pcap;
pub mod sim;
pub mod trace;

pub use event::{Event, EventQueue};
pub use fault::FaultInjector;
pub use sim::{Endpoint, Io, Middlebox, PathConfig, SimBuffers, Simulation, StopReason, Verdict};
pub use trace::{Trace, TraceEvent, TracePoint};

/// Which way a packet is traveling through the path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// From the client side toward the server side.
    ToServer,
    /// From the server side toward the client side.
    ToClient,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Direction {
        match self {
            Direction::ToServer => Direction::ToClient,
            Direction::ToClient => Direction::ToServer,
        }
    }
}

/// Which endpoint of the simulated path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The in-country, unmodified client.
    Client,
    /// The out-of-country server (where evasion strategies run).
    Server,
}

impl Side {
    /// The side a packet traveling in `dir` is headed to.
    pub fn destination_of(dir: Direction) -> Side {
        match dir {
            Direction::ToServer => Side::Server,
            Direction::ToClient => Side::Client,
        }
    }

    /// The direction of traffic originated by this side.
    pub fn outbound_direction(self) -> Direction {
        match self {
            Side::Client => Direction::ToServer,
            Side::Server => Direction::ToClient,
        }
    }
}
