//! libpcap export of simulation traces.
//!
//! Every trace can be flattened to a classic libpcap capture
//! (LINKTYPE_RAW = raw IPv4 packets) and opened in Wireshark — handy
//! for eyeballing a strategy the way the paper's authors eyeballed
//! tcpdump output. The writer is self-contained (no libpcap
//! dependency) and covers the subset of the format we produce.

// Wire formats truncate by definition: length, checksum, and offset
// fields are specified modulo their width.
#![allow(clippy::cast_possible_truncation)]
use crate::trace::{Trace, TraceEvent};
use crate::Side;

/// Which vantage point the capture emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureAt {
    /// Packets as sent/received by the client.
    Client,
    /// Packets as sent/received by the server.
    Server,
    /// Everything the middlebox saw or did.
    Middlebox,
}

const MAGIC: u32 = 0xA1B2_C3D4; // microsecond-resolution pcap
const VERSION_MAJOR: u16 = 2;
const VERSION_MINOR: u16 = 4;
const SNAPLEN: u32 = 65_535;
const LINKTYPE_RAW: u32 = 101; // raw IP

/// Serialize the events visible at `at` into a pcap byte stream.
pub fn to_pcap(trace: &Trace, at: CaptureAt) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&VERSION_MAJOR.to_le_bytes());
    out.extend_from_slice(&VERSION_MINOR.to_le_bytes());
    out.extend_from_slice(&0i32.to_le_bytes()); // thiszone
    out.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
    out.extend_from_slice(&SNAPLEN.to_le_bytes());
    out.extend_from_slice(&LINKTYPE_RAW.to_le_bytes());

    let mut bytes = Vec::new(); // per-record scratch, reused
    for event in &trace.events {
        #[allow(clippy::match_like_matches_macro)] // the arm table reads as a policy
        let visible = match (at, event) {
            (
                CaptureAt::Client,
                TraceEvent::Sent {
                    side: Side::Client, ..
                },
            )
            | (
                CaptureAt::Client,
                TraceEvent::Delivered {
                    side: Side::Client, ..
                },
            )
            | (
                CaptureAt::Server,
                TraceEvent::Sent {
                    side: Side::Server, ..
                },
            )
            | (
                CaptureAt::Server,
                TraceEvent::Delivered {
                    side: Side::Server, ..
                },
            )
            | (CaptureAt::Middlebox, TraceEvent::Forwarded { .. })
            | (CaptureAt::Middlebox, TraceEvent::DroppedByMiddlebox { .. })
            | (CaptureAt::Middlebox, TraceEvent::Injected { .. }) => true,
            _ => false,
        };
        if !visible {
            continue;
        }
        let t = event.time();
        // Raw-serialize so deliberately broken checksums stay broken in
        // the capture, exactly as they were on the simulated wire.
        bytes.clear();
        event.packet().serialize_raw_into(&mut bytes);
        out.extend_from_slice(&((t / 1_000_000) as u32).to_le_bytes());
        out.extend_from_slice(&((t % 1_000_000) as u32).to_le_bytes());
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&bytes);
    }
    out
}

/// One parsed capture record: (timestamp in µs, raw packet bytes).
pub type PcapRecord = (u64, Vec<u8>);

/// Parse-back helper used by tests (and by anyone verifying captures):
/// returns (linktype, packet records).
pub fn parse_pcap(data: &[u8]) -> Option<(u32, Vec<PcapRecord>)> {
    if data.len() < 24 {
        return None;
    }
    let magic = u32::from_le_bytes(data[0..4].try_into().ok()?);
    if magic != MAGIC {
        return None;
    }
    let linktype = u32::from_le_bytes(data[20..24].try_into().ok()?);
    let mut records = Vec::new();
    let mut at = 24;
    while at + 16 <= data.len() {
        let sec = u64::from(u32::from_le_bytes(data[at..at + 4].try_into().ok()?));
        let usec = u64::from(u32::from_le_bytes(data[at + 4..at + 8].try_into().ok()?));
        let incl = u32::from_le_bytes(data[at + 8..at + 12].try_into().ok()?) as usize;
        at += 16;
        let bytes = data.get(at..at + incl)?.to_vec();
        at += incl;
        records.push((sec * 1_000_000 + usec, bytes));
    }
    Some((linktype, records))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;
    use packet::{Packet, TcpFlags};

    fn traced_exchange() -> Trace {
        let mut trace = Trace::default();
        let mut syn = Packet::tcp(
            [10, 0, 0, 1],
            1,
            [2, 2, 2, 2],
            80,
            TcpFlags::SYN,
            5,
            0,
            vec![],
        );
        syn.finalize();
        trace.push(TraceEvent::Sent {
            t: 1_500_000,
            side: Side::Client,
            pkt: syn.clone(),
        });
        trace.push(TraceEvent::Forwarded {
            t: 1_510_000,
            dir: crate::Direction::ToServer,
            pkt: syn.clone(),
        });
        trace.push(TraceEvent::Delivered {
            t: 1_550_000,
            side: Side::Server,
            pkt: syn,
        });
        trace
    }

    #[test]
    fn header_and_records_round_trip() {
        let trace = traced_exchange();
        let pcap = to_pcap(&trace, CaptureAt::Client);
        let (linktype, records) = parse_pcap(&pcap).expect("valid pcap");
        assert_eq!(linktype, LINKTYPE_RAW);
        assert_eq!(records.len(), 1, "client vantage sees only its send");
        assert_eq!(records[0].0, 1_500_000);
        // The record is a parseable raw IP packet.
        let parsed = Packet::parse(&records[0].1).unwrap();
        assert_eq!(parsed.flags(), TcpFlags::SYN);
    }

    #[test]
    fn vantage_points_filter_differently() {
        let trace = traced_exchange();
        let client = parse_pcap(&to_pcap(&trace, CaptureAt::Client)).unwrap().1;
        let server = parse_pcap(&to_pcap(&trace, CaptureAt::Server)).unwrap().1;
        let mb = parse_pcap(&to_pcap(&trace, CaptureAt::Middlebox))
            .unwrap()
            .1;
        assert_eq!(client.len(), 1);
        assert_eq!(server.len(), 1);
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn broken_checksums_survive_into_the_capture() {
        let mut trace = Trace::default();
        let mut bad = Packet::tcp([1; 4], 1, [2; 4], 2, TcpFlags::RST, 0, 0, vec![]);
        bad.finalize();
        bad.tcp_header_mut().unwrap().checksum ^= 0xFFFF;
        trace.push(TraceEvent::Sent {
            t: 0,
            side: Side::Server,
            pkt: bad,
        });
        let (_, records) = parse_pcap(&to_pcap(&trace, CaptureAt::Server)).unwrap();
        let parsed = Packet::parse(&records[0].1).unwrap();
        assert!(!parsed.checksums_ok(), "insertion packet must stay broken");
    }

    #[test]
    fn golden_bytes_header_and_one_record() {
        // Byte-exact libpcap framing: a parse-back round trip can't
        // catch a writer and parser drifting from the format *together*,
        // so pin the exact bytes Wireshark/libpcap expect.
        let mut trace = Trace::default();
        let mut pkt = Packet::tcp(
            [10, 0, 0, 1],
            1,
            [2, 2, 2, 2],
            80,
            TcpFlags::SYN,
            5,
            0,
            vec![],
        );
        pkt.finalize();
        let wire = pkt.serialize_raw();
        trace.push(TraceEvent::Sent {
            t: 3_000_007, // 3 s + 7 µs
            side: Side::Client,
            pkt,
        });
        let pcap = to_pcap(&trace, CaptureAt::Client);

        // Global header: magic, 2.4, thiszone 0, sigfigs 0, snaplen
        // 65535, LINKTYPE_RAW (101) — all little-endian.
        let golden_header: [u8; 24] = [
            0xD4, 0xC3, 0xB2, 0xA1, // magic 0xA1B2C3D4, LE
            0x02, 0x00, // version major 2
            0x04, 0x00, // version minor 4
            0x00, 0x00, 0x00, 0x00, // thiszone
            0x00, 0x00, 0x00, 0x00, // sigfigs
            0xFF, 0xFF, 0x00, 0x00, // snaplen 65535
            0x65, 0x00, 0x00, 0x00, // linktype 101 (raw IP)
        ];
        assert_eq!(&pcap[..24], &golden_header);

        // Record header: ts_sec=3, ts_usec=7, incl_len=orig_len=|wire|.
        let mut golden_record = Vec::new();
        golden_record.extend_from_slice(&3u32.to_le_bytes());
        golden_record.extend_from_slice(&7u32.to_le_bytes());
        golden_record.extend_from_slice(&(wire.len() as u32).to_le_bytes());
        golden_record.extend_from_slice(&(wire.len() as u32).to_le_bytes());
        golden_record.extend_from_slice(&wire);
        assert_eq!(&pcap[24..], &golden_record[..]);
        assert_eq!(pcap.len(), 24 + 16 + wire.len());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_pcap(b"not a pcap").is_none());
        assert!(parse_pcap(&[]).is_none());
    }
}
