//! The simulation driver: two endpoints, one middlebox, one path.
//!
//! ## Path and TTL model
//!
//! The path is `client —(c2m hops)— middlebox —(m2s hops)— server`.
//! Hop counts use traceroute semantics measured at the packet's origin:
//!
//! * a packet **reaches the middlebox** iff its TTL ≥ the hop count of
//!   the segment between its origin and the middlebox;
//! * it **reaches the far endpoint** iff its TTL ≥ the total hop count.
//!
//! So a client probe with `ttl = c2m` elicits censorship but never
//! reaches the server — exactly the TTL-limited probing the paper uses
//! to localize censorship boxes (§6), and the reason TTL-limited
//! insertion packets are processed by censors but not by endpoints.
//!
//! ## Scheduling model
//!
//! Endpoints are callbacks ([`Endpoint`]) invoked with an [`Io`] they
//! fill with outbound packets and an optional wake-up request. The
//! middlebox ([`Middlebox`]) renders a [`Verdict`] per packet: forward
//! (possibly rewritten — in-path censors may do that), drop, and/or
//! inject packets toward either side. Injections are delivered with the
//! segment latency of the targeted side.

use crate::event::{Event, EventQueue};
use crate::trace::{Trace, TraceEvent};
use crate::{Direction, Side};
use packet::Packet;

/// What an endpoint produced during one callback.
#[derive(Debug, Default)]
pub struct Io {
    /// Packets to transmit, in order.
    pub out: Vec<Packet>,
    /// Absolute time at which to call [`Endpoint::on_wake`], if any.
    pub wake_at: Option<u64>,
}

impl Io {
    /// Queue a packet for transmission.
    pub fn send(&mut self, pkt: Packet) {
        self.out.push(pkt);
    }

    /// Empty the buffer for reuse, keeping the `out` allocation.
    pub fn reset(&mut self) {
        self.out.clear();
        self.wake_at = None;
    }

    /// Request a wake-up at absolute simulated time `at`.
    pub fn wake_at(&mut self, at: u64) {
        self.wake_at = Some(match self.wake_at {
            Some(existing) => existing.min(at),
            None => at,
        });
    }
}

/// A host stack attached to one end of the path.
///
/// `Send` is a supertrait so whole simulations (endpoints, middlebox,
/// queue) can be moved into `harness::pool` worker threads.
pub trait Endpoint: Send {
    /// Called once at t=0 before any packet flows.
    fn on_start(&mut self, now: u64, io: &mut Io);

    /// Called for every packet delivered to this endpoint.
    fn on_packet(&mut self, pkt: Packet, now: u64, io: &mut Io);

    /// Called when a previously requested wake-up time arrives.
    fn on_wake(&mut self, now: u64, io: &mut Io);
}

/// The middlebox's decision about one packet.
#[derive(Debug, Default)]
pub struct Verdict {
    /// The packet to forward onward (`None` = swallowed / in-path drop).
    pub forward: Option<Packet>,
    /// Packets fabricated toward the client.
    pub inject_to_client: Vec<Packet>,
    /// Packets fabricated toward the server.
    pub inject_to_server: Vec<Packet>,
}

impl Verdict {
    /// Forward the packet untouched, inject nothing. What an on-path
    /// censor does when it doesn't act.
    pub fn pass(pkt: Packet) -> Verdict {
        Verdict {
            forward: Some(pkt),
            ..Verdict::default()
        }
    }

    /// Swallow the packet (in-path drop), inject nothing.
    pub fn drop() -> Verdict {
        Verdict::default()
    }
}

/// A censor (or any middlebox) on the path.
///
/// `Send` is a supertrait so boxed censor models can cross into
/// `harness::pool` worker threads.
pub trait Middlebox: Send {
    /// Render a verdict for one packet crossing the box.
    fn process(&mut self, pkt: &Packet, dir: Direction, now: u64) -> Verdict;
}

impl Middlebox for Box<dyn Middlebox> {
    fn process(&mut self, pkt: &Packet, dir: Direction, now: u64) -> Verdict {
        (**self).process(pkt, dir, now)
    }
}

/// A transparent middlebox that forwards everything: the no-censor
/// baseline.
#[derive(Debug, Default, Clone)]
pub struct NullMiddlebox;

impl Middlebox for NullMiddlebox {
    fn process(&mut self, pkt: &Packet, _dir: Direction, _now: u64) -> Verdict {
        Verdict::pass(pkt.clone())
    }
}

/// Path geometry and latency.
#[derive(Debug, Clone, Copy)]
pub struct PathConfig {
    /// Router hops between client and middlebox.
    pub client_to_mb_hops: u8,
    /// Router hops between middlebox and server.
    pub mb_to_server_hops: u8,
    /// One-way latency client↔middlebox, microseconds.
    pub client_to_mb_latency: u64,
    /// One-way latency middlebox↔server, microseconds.
    pub mb_to_server_latency: u64,
}

impl Default for PathConfig {
    fn default() -> Self {
        // A censor a few hops into the client's country; a far server.
        PathConfig {
            client_to_mb_hops: 4,
            mb_to_server_hops: 8,
            client_to_mb_latency: 10_000, // 10 ms
            mb_to_server_latency: 40_000, // 40 ms
        }
    }
}

impl PathConfig {
    /// Hops from `side`'s origin to the middlebox.
    fn hops_to_mb(&self, from: Side) -> u8 {
        match from {
            Side::Client => self.client_to_mb_hops,
            Side::Server => self.mb_to_server_hops,
        }
    }

    /// Latency from `side` to the middlebox.
    fn latency_to_mb(&self, from: Side) -> u64 {
        match from {
            Side::Client => self.client_to_mb_latency,
            Side::Server => self.mb_to_server_latency,
        }
    }

    /// Latency from the middlebox to `side`.
    fn latency_from_mb(&self, to: Side) -> u64 {
        match to {
            Side::Client => self.client_to_mb_latency,
            Side::Server => self.mb_to_server_latency,
        }
    }
}

/// Why [`Simulation::run`] stopped.
///
/// Callers that score trial outcomes must distinguish a drained queue
/// (the exchange genuinely finished) from a horizon or event-cap stop
/// (the exchange was *truncated* — its outcome is a property of the
/// cutoff, not of the protocols). Before this enum existed, a
/// pathological strategy that provoked a retransmit/RST storm was
/// silently cut at `max_events` and scored as if the client had been
/// censored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The event queue drained: every scheduled event was processed.
    Drained,
    /// The next event lies beyond `max_time`. The event is left in the
    /// queue (not discarded), so a subsequent `run` with a larger
    /// horizon continues exactly where this one stopped.
    TimeLimit,
    /// `max_events` was reached with work still pending — a livelock
    /// guard, and a signal the trial result is truncated.
    EventLimit,
}

impl StopReason {
    /// True when the simulation stopped with events still pending
    /// because of the livelock guard.
    pub fn truncated(self) -> bool {
        matches!(self, StopReason::EventLimit)
    }
}

/// The heap-backed buffers a simulation churns through: the trace, the
/// event queue, and the per-event endpoint I/O buffer.
///
/// A simulation built from recycled buffers
/// ([`Simulation::with_path_buffers`]) reuses their allocations instead
/// of growing fresh ones, and [`Simulation::into_buffers`] hands them
/// back when the run is over — the loop that lets a trial harness run
/// millions of simulations with O(workers) buffer growth instead of
/// O(trials). Recycling is invisible to results: every buffer is
/// cleared on the way in (including the event queue's FIFO-tiebreak
/// counter), so a recycled simulation is bit-identical to a fresh one.
#[derive(Debug, Default)]
pub struct SimBuffers {
    /// The captured trace (still readable after `into_buffers`).
    pub trace: Trace,
    /// The time-ordered event queue.
    pub queue: EventQueue,
    /// The per-event endpoint I/O buffer.
    pub io: Io,
}

impl SimBuffers {
    /// Clear every buffer, keeping allocations.
    fn reset(&mut self) {
        self.trace.clear();
        self.queue.clear();
        self.io.reset();
    }
}

/// A complete two-endpoint, one-middlebox simulation.
pub struct Simulation<C, S, M> {
    /// The client stack.
    pub client: C,
    /// The server stack.
    pub server: S,
    /// The middlebox (censor model or [`NullMiddlebox`]).
    pub middlebox: M,
    /// Path geometry.
    pub path: PathConfig,
    /// Captured trace.
    pub trace: Trace,
    queue: EventQueue,
    now: u64,
    events_processed: u64,
    booted: bool,
    /// Reused per-event endpoint I/O buffer: the `out` vector's
    /// capacity survives across events, so steady-state dispatch never
    /// re-allocates it.
    io: Io,
    /// Hard cap on processed events, guarding against livelock.
    pub max_events: u64,
}

impl<C: Endpoint, S: Endpoint, M: Middlebox> Simulation<C, S, M> {
    /// Build a simulation with the default path.
    pub fn new(client: C, server: S, middlebox: M) -> Self {
        Self::with_path(client, server, middlebox, PathConfig::default())
    }

    /// Build a simulation with explicit path geometry.
    pub fn with_path(client: C, server: S, middlebox: M, path: PathConfig) -> Self {
        Self::with_path_buffers(client, server, middlebox, path, SimBuffers::default())
    }

    /// [`Simulation::with_path`] reusing recycled [`SimBuffers`] (e.g.
    /// from a previous run's [`Simulation::into_buffers`]). The buffers
    /// are cleared on the way in, so results are bit-identical to a
    /// fresh simulation — only the allocations are recycled.
    pub fn with_path_buffers(
        client: C,
        server: S,
        middlebox: M,
        path: PathConfig,
        mut buffers: SimBuffers,
    ) -> Self {
        buffers.reset();
        Simulation {
            client,
            server,
            middlebox,
            path,
            trace: buffers.trace,
            queue: buffers.queue,
            now: 0,
            events_processed: 0,
            booted: false,
            io: buffers.io,
            max_events: 100_000,
        }
    }

    /// Tear the simulation down, handing its buffers (including the
    /// final trace, still readable) back for recycling.
    pub fn into_buffers(self) -> SimBuffers {
        SimBuffers {
            trace: self.trace,
            queue: self.queue,
            io: self.io,
        }
    }

    /// Current simulated time (microseconds).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Events dispatched so far (diagnostics; compare `max_events`).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Run until the event queue drains, `max_time` passes, or the
    /// `max_events` livelock guard trips. Returns why it stopped; the
    /// simulated end time stays readable via [`Simulation::now`].
    ///
    /// Horizon stops *peek* rather than pop: the first over-horizon
    /// event stays queued, so calling `run` again with a larger
    /// horizon resumes losslessly.
    pub fn run(&mut self, max_time: u64) -> StopReason {
        if !self.booted {
            self.booted = true;
            let mut io = std::mem::take(&mut self.io);
            self.server.on_start(0, &mut io);
            self.flush(Side::Server, &mut io);
            self.client.on_start(0, &mut io);
            self.flush(Side::Client, &mut io);
            self.io = io;
        }

        loop {
            let Some(t) = self.queue.peek_time() else {
                return StopReason::Drained;
            };
            if t > max_time {
                return StopReason::TimeLimit;
            }
            if self.events_processed >= self.max_events {
                return StopReason::EventLimit;
            }
            let (t, event) = self.queue.pop().expect("peeked above");
            self.now = t;
            self.events_processed += 1;
            self.dispatch(event);
        }
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::AtMiddlebox { pkt, dir } => self.at_middlebox(pkt, dir),
            Event::AtEndpoint { side, pkt } => {
                self.trace.push(TraceEvent::Delivered {
                    t: self.now,
                    side,
                    pkt: pkt.clone(),
                });
                let mut io = std::mem::take(&mut self.io);
                match side {
                    Side::Client => self.client.on_packet(pkt, self.now, &mut io),
                    Side::Server => self.server.on_packet(pkt, self.now, &mut io),
                }
                self.flush(side, &mut io);
                self.io = io;
            }
            Event::Wake { side } => {
                let mut io = std::mem::take(&mut self.io);
                match side {
                    Side::Client => self.client.on_wake(self.now, &mut io),
                    Side::Server => self.server.on_wake(self.now, &mut io),
                }
                self.flush(side, &mut io);
                self.io = io;
            }
        }
    }

    /// Transmit an endpoint's output and schedule its wake-up. Drains
    /// `io` so the caller can reuse its buffers for the next event.
    fn flush(&mut self, from: Side, io: &mut Io) {
        for pkt in io.out.drain(..) {
            self.trace.push(TraceEvent::Sent {
                t: self.now,
                side: from,
                pkt: pkt.clone(),
            });
            self.transmit(from, pkt);
        }
        if let Some(at) = io.wake_at.take() {
            self.queue
                .schedule(at.max(self.now), Event::Wake { side: from });
        }
    }

    /// First segment: origin → middlebox, with TTL check.
    fn transmit(&mut self, from: Side, pkt: Packet) {
        let dir = from.outbound_direction();
        let hops = self.path.hops_to_mb(from);
        if pkt.ip.ttl < hops {
            self.trace.push(TraceEvent::TtlExpired {
                t: self.now,
                dir,
                reached_middlebox: false,
                pkt,
            });
            return;
        }
        let mut pkt = pkt;
        pkt.ip.decrement_ttl(hops);
        self.queue.schedule(
            self.now + self.path.latency_to_mb(from),
            Event::AtMiddlebox { pkt, dir },
        );
    }

    /// Middlebox processing and second-segment forwarding.
    fn at_middlebox(&mut self, pkt: Packet, dir: Direction) {
        let verdict = self.middlebox.process(&pkt, dir, self.now);
        match verdict.forward {
            Some(fwd) => {
                self.trace.push(TraceEvent::Forwarded {
                    t: self.now,
                    dir,
                    pkt: fwd.clone(),
                });
                self.forward_to_destination(fwd, dir);
            }
            None => {
                self.trace.push(TraceEvent::DroppedByMiddlebox {
                    t: self.now,
                    dir,
                    pkt,
                });
            }
        }
        for inj in verdict.inject_to_client {
            self.inject(inj, Side::Client);
        }
        for inj in verdict.inject_to_server {
            self.inject(inj, Side::Server);
        }
    }

    fn forward_to_destination(&mut self, pkt: Packet, dir: Direction) {
        let to = Side::destination_of(dir);
        let hops = self.path.hops_to_mb(to); // same count from mb to that side
        if pkt.ip.ttl < hops {
            self.trace.push(TraceEvent::TtlExpired {
                t: self.now,
                dir,
                reached_middlebox: true,
                pkt,
            });
            return;
        }
        let mut pkt = pkt;
        pkt.ip.decrement_ttl(hops);
        self.queue.schedule(
            self.now + self.path.latency_from_mb(to),
            Event::AtEndpoint { side: to, pkt },
        );
    }

    fn inject(&mut self, pkt: Packet, toward: Side) {
        self.trace.push(TraceEvent::Injected {
            t: self.now,
            toward,
            pkt: pkt.clone(),
        });
        self.queue.schedule(
            self.now + self.path.latency_from_mb(toward),
            Event::AtEndpoint { side: toward, pkt },
        );
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;
    use packet::TcpFlags;

    /// An endpoint that fires one SYN at start and records deliveries.
    #[derive(Default)]
    struct Pinger {
        ttl: u8,
        received: Vec<Packet>,
    }

    impl Endpoint for Pinger {
        fn on_start(&mut self, _now: u64, io: &mut Io) {
            if self.ttl > 0 {
                let mut p = Packet::tcp(
                    [10, 0, 0, 1],
                    1000,
                    [20, 0, 0, 1],
                    80,
                    TcpFlags::SYN,
                    1,
                    0,
                    vec![],
                );
                p.ip.ttl = self.ttl;
                io.send(p);
            }
        }
        fn on_packet(&mut self, pkt: Packet, _now: u64, _io: &mut Io) {
            self.received.push(pkt);
        }
        fn on_wake(&mut self, _now: u64, _io: &mut Io) {}
    }

    /// Echoes every packet back with flags RST (to test server→client path).
    #[derive(Default)]
    struct Echoer {
        received: Vec<Packet>,
    }

    impl Endpoint for Echoer {
        fn on_start(&mut self, _now: u64, _io: &mut Io) {}
        fn on_packet(&mut self, pkt: Packet, _now: u64, io: &mut Io) {
            self.received.push(pkt.clone());
            let reply = Packet::tcp(
                pkt.ip.dst,
                pkt.dst_port(),
                pkt.ip.src,
                pkt.src_port(),
                TcpFlags::SYN_ACK,
                7,
                8,
                vec![],
            );
            io.send(reply);
        }
        fn on_wake(&mut self, _now: u64, _io: &mut Io) {}
    }

    fn path() -> PathConfig {
        PathConfig {
            client_to_mb_hops: 3,
            mb_to_server_hops: 5,
            client_to_mb_latency: 10,
            mb_to_server_latency: 20,
        }
    }

    #[test]
    fn packet_travels_end_to_end_and_back() {
        let mut sim = Simulation::with_path(
            Pinger {
                ttl: 64,
                ..Default::default()
            },
            Echoer::default(),
            NullMiddlebox,
            path(),
        );
        sim.run(1_000_000);
        assert_eq!(sim.server.received.len(), 1);
        assert_eq!(sim.client.received.len(), 1);
        // TTL decremented by total hops (3 + 5).
        assert_eq!(sim.server.received[0].ip.ttl, 64 - 8);
        // Reply travels 5 + 3.
        assert_eq!(sim.client.received[0].ip.ttl, 64 - 8);
        // Latency: 10 + 20 out, 20 + 10 back = 60.
        assert_eq!(sim.now(), 60);
    }

    #[test]
    fn ttl_expires_before_middlebox() {
        let mut sim = Simulation::with_path(
            Pinger {
                ttl: 2, // needs 3 to reach the middlebox
                ..Default::default()
            },
            Echoer::default(),
            NullMiddlebox,
            path(),
        );
        sim.run(1_000_000);
        assert!(sim.server.received.is_empty());
        assert_eq!(
            sim.trace.count(|e| matches!(
                e,
                TraceEvent::TtlExpired {
                    reached_middlebox: false,
                    ..
                }
            )),
            1
        );
    }

    #[test]
    fn ttl_reaches_middlebox_but_not_server() {
        struct DropCounter(usize);
        impl Middlebox for DropCounter {
            fn process(&mut self, pkt: &Packet, _dir: Direction, _now: u64) -> Verdict {
                self.0 += 1;
                Verdict::pass(pkt.clone())
            }
        }
        let mut sim = Simulation::with_path(
            Pinger {
                ttl: 4, // reaches mb (3 hops), dies before server (needs 8)
                ..Default::default()
            },
            Echoer::default(),
            DropCounter(0),
            path(),
        );
        sim.run(1_000_000);
        assert_eq!(sim.middlebox.0, 1, "middlebox must see the packet");
        assert!(sim.server.received.is_empty());
        assert_eq!(
            sim.trace.count(|e| matches!(
                e,
                TraceEvent::TtlExpired {
                    reached_middlebox: true,
                    ..
                }
            )),
            1
        );
    }

    #[test]
    fn exact_boundary_ttls() {
        // ttl == c2m hops: reaches middlebox. ttl == total: reaches server.
        for (ttl, reaches_server) in [(3u8, false), (7, false), (8, true)] {
            let mut sim = Simulation::with_path(
                Pinger {
                    ttl,
                    ..Default::default()
                },
                Echoer::default(),
                NullMiddlebox,
                path(),
            );
            sim.run(1_000_000);
            assert_eq!(!sim.server.received.is_empty(), reaches_server, "ttl={ttl}");
        }
    }

    #[test]
    fn inpath_drop_and_injection() {
        /// Drops everything client→server and injects a RST to the client.
        struct Blackholer;
        impl Middlebox for Blackholer {
            fn process(&mut self, pkt: &Packet, dir: Direction, _now: u64) -> Verdict {
                if dir == Direction::ToServer {
                    let mut v = Verdict::drop();
                    let rst = Packet::tcp(
                        pkt.ip.dst,
                        pkt.dst_port(),
                        pkt.ip.src,
                        pkt.src_port(),
                        TcpFlags::RST,
                        0,
                        0,
                        vec![],
                    );
                    v.inject_to_client.push(rst);
                    v
                } else {
                    Verdict::pass(pkt.clone())
                }
            }
        }
        let mut sim = Simulation::with_path(
            Pinger {
                ttl: 64,
                ..Default::default()
            },
            Echoer::default(),
            Blackholer,
            path(),
        );
        sim.run(1_000_000);
        assert!(sim.server.received.is_empty());
        assert_eq!(sim.client.received.len(), 1);
        assert_eq!(sim.client.received[0].flags(), TcpFlags::RST);
        assert!(sim.trace.middlebox_dropped_any());
        assert_eq!(sim.trace.injected_toward(Side::Client).len(), 1);
    }

    #[test]
    fn wake_requests_fire_in_order() {
        #[derive(Default)]
        struct Waker {
            fired: Vec<u64>,
        }
        impl Endpoint for Waker {
            fn on_start(&mut self, _now: u64, io: &mut Io) {
                io.wake_at(100);
            }
            fn on_packet(&mut self, _pkt: Packet, _now: u64, _io: &mut Io) {}
            fn on_wake(&mut self, now: u64, io: &mut Io) {
                self.fired.push(now);
                if self.fired.len() < 3 {
                    io.wake_at(now + 50);
                }
            }
        }
        let mut sim =
            Simulation::with_path(Waker::default(), Echoer::default(), NullMiddlebox, path());
        sim.run(1_000_000);
        assert_eq!(sim.client.fired, vec![100, 150, 200]);
    }

    #[test]
    fn max_events_guards_against_livelock() {
        /// Two endpoints that ping-pong forever.
        struct Forever;
        impl Endpoint for Forever {
            fn on_start(&mut self, _now: u64, io: &mut Io) {
                io.wake_at(1);
            }
            fn on_packet(&mut self, _pkt: Packet, _now: u64, _io: &mut Io) {}
            fn on_wake(&mut self, now: u64, io: &mut Io) {
                io.wake_at(now + 1);
            }
        }
        let mut sim = Simulation::with_path(Forever, Echoer::default(), NullMiddlebox, path());
        sim.max_events = 500;
        let stop = sim.run(u64::MAX);
        // Terminates despite the endless wake chain — and says why.
        assert_eq!(stop, StopReason::EventLimit);
        assert!(stop.truncated());
        assert_eq!(sim.events_processed(), 500);
    }

    #[test]
    fn stop_reasons_distinguish_drain_from_horizon() {
        let mut sim = Simulation::with_path(
            Pinger {
                ttl: 64,
                ..Default::default()
            },
            Echoer::default(),
            NullMiddlebox,
            path(),
        );
        assert_eq!(sim.run(1_000_000), StopReason::Drained);
        assert!(!StopReason::Drained.truncated());
    }

    #[test]
    fn horizon_stop_requeues_the_over_horizon_event() {
        // The SYN takes 10 µs to reach the middlebox; a 5 µs horizon
        // stops before it. The event must NOT be discarded: resuming
        // with a larger horizon delivers it and the echo comes back.
        let mut sim = Simulation::with_path(
            Pinger {
                ttl: 64,
                ..Default::default()
            },
            Echoer::default(),
            NullMiddlebox,
            path(),
        );
        assert_eq!(sim.run(5), StopReason::TimeLimit);
        assert!(sim.server.received.is_empty());
        assert_eq!(sim.run(1_000_000), StopReason::Drained);
        assert_eq!(sim.server.received.len(), 1, "horizon stop lost the SYN");
        assert_eq!(sim.client.received.len(), 1);
        assert_eq!(sim.now(), 60);
    }
}
