//! Fault injection: adverse-network wrappers for any middlebox.
//!
//! Modeled after smoltcp's example fault injectors: a [`FaultInjector`]
//! wraps an inner [`Middlebox`] (a censor, or [`crate::sim::NullMiddlebox`])
//! and randomly drops or corrupts packets *before* the inner box sees
//! them — standing in for the lossy last-mile links the paper's
//! real-world vantage points sat behind. Corruption flips one byte and
//! deliberately does **not** repair checksums: endpoints drop the
//! mangled packet and recover by retransmission, exactly like real
//! stacks.

use crate::sim::{Middlebox, Verdict};
use crate::Direction;
use packet::Packet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A lossy/corrupting wrapper around another middlebox.
pub struct FaultInjector<M> {
    /// The wrapped middlebox.
    pub inner: M,
    /// Probability a packet is silently dropped.
    pub drop_chance: f64,
    /// Probability one byte of the payload/headers is flipped.
    pub corrupt_chance: f64,
    rng: StdRng,
    /// Dropped-packet count (diagnostics).
    pub dropped: u64,
    /// Corrupted-packet count (diagnostics).
    pub corrupted: u64,
}

impl<M> FaultInjector<M> {
    /// Wrap `inner` with the given fault probabilities.
    pub fn new(inner: M, drop_chance: f64, corrupt_chance: f64, seed: u64) -> Self {
        FaultInjector {
            inner,
            drop_chance,
            corrupt_chance,
            rng: StdRng::seed_from_u64(seed),
            dropped: 0,
            corrupted: 0,
        }
    }
}

impl<M: Middlebox> Middlebox for FaultInjector<M> {
    fn process(&mut self, pkt: &Packet, dir: Direction, now: u64) -> Verdict {
        if self.rng.gen::<f64>() < self.drop_chance {
            self.dropped += 1;
            return Verdict::drop();
        }
        if self.rng.gen::<f64>() < self.corrupt_chance {
            self.corrupted += 1;
            let mut mangled = pkt.clone();
            // Flip one bit somewhere an endpoint checksum will notice:
            // the TCP checksum covers header + payload, so any of these
            // fields works; payload is the common case.
            if mangled.payload.is_empty() {
                if let Some(tcp) = mangled.tcp_header_mut() {
                    tcp.seq ^= 1u32 << self.rng.gen_range(0u32..16);
                }
            } else {
                let at = self.rng.gen_range(0..mangled.payload.len());
                mangled.payload.make_mut()[at] ^= 1u8 << self.rng.gen_range(0u8..8);
            }
            // NOT finalized: the stored checksum no longer matches.
            return self.inner.process(&mangled, dir, now);
        }
        self.inner.process(pkt, dir, now)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;
    use crate::sim::NullMiddlebox;
    use packet::TcpFlags;

    fn pkt() -> Packet {
        let mut p = Packet::tcp(
            [1; 4],
            1,
            [2; 4],
            2,
            TcpFlags::PSH_ACK,
            10,
            20,
            b"hello".to_vec(),
        );
        p.finalize();
        p
    }

    #[test]
    fn zero_rates_are_transparent() {
        let mut injector = FaultInjector::new(NullMiddlebox, 0.0, 0.0, 7);
        for _ in 0..100 {
            let v = injector.process(&pkt(), Direction::ToServer, 0);
            assert_eq!(v.forward, Some(pkt()));
        }
        assert_eq!(injector.dropped + injector.corrupted, 0);
    }

    #[test]
    fn drop_rate_is_roughly_respected() {
        let mut injector = FaultInjector::new(NullMiddlebox, 0.3, 0.0, 7);
        let mut dropped = 0;
        for _ in 0..1000 {
            if injector
                .process(&pkt(), Direction::ToServer, 0)
                .forward
                .is_none()
            {
                dropped += 1;
            }
        }
        assert!((200..400).contains(&dropped), "{dropped}");
        assert_eq!(injector.dropped, dropped);
    }

    #[test]
    fn corruption_breaks_checksums() {
        let mut injector = FaultInjector::new(NullMiddlebox, 0.0, 1.0, 7);
        for _ in 0..50 {
            let v = injector.process(&pkt(), Direction::ToServer, 0);
            let forwarded = v.forward.expect("corrupt ≠ drop");
            assert!(!forwarded.checksums_ok(), "corruption must be detectable");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut injector = FaultInjector::new(NullMiddlebox, 0.5, 0.0, seed);
            (0..64)
                .map(|_| {
                    injector
                        .process(&pkt(), Direction::ToServer, 0)
                        .forward
                        .is_some()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
