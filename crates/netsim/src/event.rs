//! The event queue: a time-ordered, FIFO-tiebroken priority queue.
//!
//! Determinism demands that two events scheduled for the same instant
//! are processed in the order they were scheduled, so each entry carries
//! a monotonically increasing sequence number as a tiebreaker.

use crate::{Direction, Side};
use packet::Packet;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Something that will happen at a simulated instant.
#[derive(Debug, Clone)]
pub enum Event {
    /// A packet arrives at the middlebox, traveling in `dir`.
    AtMiddlebox {
        /// The packet as it appears at the middlebox (TTL already
        /// decremented for the hops traveled).
        pkt: Packet,
        /// Travel direction.
        dir: Direction,
    },
    /// A packet arrives at an endpoint.
    AtEndpoint {
        /// The receiving side.
        side: Side,
        /// The packet as delivered.
        pkt: Packet,
    },
    /// A timer an endpoint asked for fires.
    Wake {
        /// Which endpoint to wake.
        side: Side,
    },
}

#[derive(Debug)]
struct Entry {
    at: u64,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Time-ordered event queue with FIFO tiebreak.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Entry>>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at absolute time `at` (microseconds).
    pub fn schedule(&mut self, at: u64, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Pop the earliest event, returning `(time, event)`.
    pub fn pop(&mut self) -> Option<(u64, Event)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.event))
    }

    /// The timestamp of the earliest pending event, without removing
    /// it. Lets the simulation stop at a horizon *without* discarding
    /// the first over-horizon event.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Empty the queue for reuse, keeping the heap's allocation.
    ///
    /// Resets the FIFO-tiebreak sequence counter too: a recycled queue
    /// must schedule events with the same sequence numbers a fresh one
    /// would, or same-instant tiebreaks — and therefore whole
    /// simulations — would depend on what the buffer was used for
    /// before.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    fn wake(side: Side) -> Event {
        Event::Wake { side }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, wake(Side::Client));
        q.schedule(10, wake(Side::Server));
        q.schedule(20, wake(Side::Client));
        let times: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        q.schedule(5, wake(Side::Client));
        q.schedule(5, wake(Side::Server));
        q.schedule(5, wake(Side::Client));
        let sides: Vec<Side> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::Wake { side } => side,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(sides, vec![Side::Client, Side::Server, Side::Client]);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1, wake(Side::Client));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
