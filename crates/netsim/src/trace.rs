//! Packet trace capture.
//!
//! Every packet movement in a simulation is recorded here. The harness
//! renders Figure-1/Figure-2-style waterfalls from these traces, the
//! tests assert on them, and follow-up experiments (e.g. "did the
//! censor inject a RST?") read them directly.

use crate::{Direction, Side};
use packet::Packet;

/// Where in the path a trace event happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePoint {
    /// At the client or server host.
    Endpoint(Side),
    /// At the middlebox.
    Middlebox,
    /// Somewhere along a link (TTL deaths).
    Wire,
}

/// One observed packet movement.
#[derive(Debug, Clone)]
pub enum TraceEvent {
    /// An endpoint emitted a packet.
    Sent {
        /// Simulated microseconds.
        t: u64,
        /// Originating side.
        side: Side,
        /// The packet as sent.
        pkt: Packet,
    },
    /// A packet was handed to an endpoint's stack.
    Delivered {
        /// Simulated microseconds.
        t: u64,
        /// Receiving side.
        side: Side,
        /// The packet as delivered.
        pkt: Packet,
    },
    /// The middlebox saw the packet and let it continue.
    Forwarded {
        /// Simulated microseconds.
        t: u64,
        /// Travel direction.
        dir: Direction,
        /// The packet as seen by the middlebox.
        pkt: Packet,
    },
    /// The middlebox swallowed the packet (in-path drop / blackhole).
    DroppedByMiddlebox {
        /// Simulated microseconds.
        t: u64,
        /// Travel direction.
        dir: Direction,
        /// The dropped packet.
        pkt: Packet,
    },
    /// The middlebox fabricated a packet toward one side.
    Injected {
        /// Simulated microseconds.
        t: u64,
        /// Which endpoint the injection is aimed at.
        toward: Side,
        /// The injected packet.
        pkt: Packet,
    },
    /// A packet's TTL reached zero before its destination.
    TtlExpired {
        /// Simulated microseconds.
        t: u64,
        /// Travel direction.
        dir: Direction,
        /// Whether it died before or after the middlebox.
        reached_middlebox: bool,
        /// The dying packet.
        pkt: Packet,
    },
}

impl TraceEvent {
    /// The simulated time of the event.
    pub fn time(&self) -> u64 {
        match self {
            TraceEvent::Sent { t, .. }
            | TraceEvent::Delivered { t, .. }
            | TraceEvent::Forwarded { t, .. }
            | TraceEvent::DroppedByMiddlebox { t, .. }
            | TraceEvent::Injected { t, .. }
            | TraceEvent::TtlExpired { t, .. } => *t,
        }
    }

    /// The packet involved.
    pub fn packet(&self) -> &Packet {
        match self {
            TraceEvent::Sent { pkt, .. }
            | TraceEvent::Delivered { pkt, .. }
            | TraceEvent::Forwarded { pkt, .. }
            | TraceEvent::DroppedByMiddlebox { pkt, .. }
            | TraceEvent::Injected { pkt, .. }
            | TraceEvent::TtlExpired { pkt, .. } => pkt,
        }
    }
}

/// A full simulation trace.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    /// Events in chronological (processing) order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Empty the trace for reuse, keeping the event buffer's
    /// allocation.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Record one event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// All packets delivered to `side`, in order.
    pub fn delivered_to(&self, side: Side) -> Vec<&Packet> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Delivered { side: s, pkt, .. } if *s == side => Some(pkt),
                _ => None,
            })
            .collect()
    }

    /// All packets the middlebox injected toward `side`.
    pub fn injected_toward(&self, side: Side) -> Vec<&Packet> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Injected { toward, pkt, .. } if *toward == side => Some(pkt),
                _ => None,
            })
            .collect()
    }

    /// Did the middlebox drop anything?
    pub fn middlebox_dropped_any(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, TraceEvent::DroppedByMiddlebox { .. }))
    }

    /// Did the middlebox inject anything at all?
    pub fn middlebox_injected_any(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, TraceEvent::Injected { .. }))
    }

    /// Count of events matching a predicate.
    pub fn count(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;
    use packet::TcpFlags;

    fn pkt() -> Packet {
        Packet::tcp(
            [1, 1, 1, 1],
            1,
            [2, 2, 2, 2],
            2,
            TcpFlags::SYN,
            0,
            0,
            vec![],
        )
    }

    #[test]
    fn accessors_filter_correctly() {
        let mut trace = Trace::default();
        trace.push(TraceEvent::Sent {
            t: 0,
            side: Side::Client,
            pkt: pkt(),
        });
        trace.push(TraceEvent::Delivered {
            t: 5,
            side: Side::Server,
            pkt: pkt(),
        });
        trace.push(TraceEvent::Injected {
            t: 6,
            toward: Side::Client,
            pkt: pkt(),
        });
        assert_eq!(trace.delivered_to(Side::Server).len(), 1);
        assert_eq!(trace.delivered_to(Side::Client).len(), 0);
        assert_eq!(trace.injected_toward(Side::Client).len(), 1);
        assert!(trace.middlebox_injected_any());
        assert!(!trace.middlebox_dropped_any());
        assert_eq!(trace.count(|e| e.time() > 0), 2);
    }
}
