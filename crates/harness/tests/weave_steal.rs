//! Weave model tests for the work-stealing chunk queues: across
//! **every** interleaving of owner pops and thief steals, each seeded
//! index is executed exactly once — no loss, no duplication.
//!
//! Run with `cargo test -p harness --features weave`. Without the
//! feature this file compiles to nothing.
#![cfg(feature = "weave")]

use std::sync::Arc;

use harness::steal::{seed_queues, ChunkQueue};
use weave::sync::Mutex;

/// The worker loop from the trial pool, miniaturized: pop local, steal
/// from the other queue when dry, tally every index into `hits`.
fn worker(queues: &[ChunkQueue], w: usize, hits: &Mutex<Vec<u32>>) {
    loop {
        let chunk = queues[w]
            .pop()
            .or_else(|| queues[1 - w].steal_half(&queues[w]));
        match chunk {
            Some((s, e)) => {
                let mut tally = hits
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                for hit in &mut tally[s..e] {
                    *hit += 1;
                }
            }
            None => break,
        }
    }
}

fn exactly_once_model() {
    const N: usize = 4;
    // Two workers, single-index chunks: maximal steal/pop contention
    // for the state-space size.
    let queues = Arc::new(seed_queues(N, 2, 1));
    let hits = Arc::new(Mutex::new(vec![0u32; N]));
    let handles: Vec<_> = (0..2)
        .map(|w| {
            let queues = Arc::clone(&queues);
            let hits = Arc::clone(&hits);
            weave::thread::spawn(move || worker(&queues, w, &hits))
        })
        .collect();
    for handle in handles {
        handle.join().expect("worker panicked");
    }
    let tally = hits
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    assert!(
        tally.iter().all(|&h| h == 1),
        "indices not covered exactly once: {tally:?}"
    );
}

/// Every owner-pop/thief-steal race, preemption-bounded at 3 context
/// switches (the double-pop mutant this guards against needs only 1).
#[test]
fn steal_covers_every_index_exactly_once() {
    let cfg = weave::Config {
        preemption_bound: Some(3),
        ..weave::Config::default()
    };
    let report = weave::check(cfg, exactly_once_model);
    eprintln!(
        "weave[steal_exactly_once]: {} schedules explored ({} pruned)",
        report.schedules, report.pruned
    );
    assert!(report.failure.is_none());
    assert!(report.schedules > 1, "model must actually branch");
}

/// A thief stealing from an empty victim is a clean miss in every
/// interleaving — never a panic, never a phantom chunk.
#[test]
fn steal_from_drained_victim_is_clean() {
    let report = weave::check(weave::Config::default(), || {
        let queues = Arc::new(seed_queues(1, 2, 1)); // q0 one chunk, q1 empty
        let q = Arc::clone(&queues);
        let thief = weave::thread::spawn(move || q[0].steal_half(&q[1]));
        let owned = queues[0].pop();
        let stolen = thief.join().expect("thief panicked");
        // Exactly one of them got the chunk.
        assert!(
            owned.is_some() != stolen.is_some(),
            "chunk lost or duplicated: owned={owned:?} stolen={stolen:?}"
        );
        assert!(queues[1].is_empty());
    });
    eprintln!(
        "weave[steal_drained]: {} schedules explored ({} pruned)",
        report.schedules, report.pruned
    );
    assert!(report.failure.is_none());
    assert!(report.exhausted, "tiny model must be fully explored");
}
