//! Property tests for the work-stealing pool: outputs are bit-identical
//! to the serial map for *any* worker count and *any* chunk size — the
//! determinism contract `map_indexed`/`map_indexed_scratch` promise.
//!
//! Steal interleavings are not directly controllable from here (they
//! depend on OS scheduling), so each case runs the same batch several
//! times: every run exercises a different interleaving and every run
//! must reproduce the serial output exactly.

#![allow(clippy::unwrap_used)] // test code

use harness::Pool;
use proptest::prelude::*;

/// A cheap but index-sensitive task: any lost, duplicated, or reordered
/// index changes the output vector.
fn task(i: usize) -> u64 {
    let mut x = i as u64 ^ 0x9E37_79B9_7F4A_7C15;
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Work-stealing handout never changes the result: adversarial
    /// (n, workers, chunk) combinations — chunk of 1 maximizes steal
    /// traffic, chunk larger than n degenerates to one chunk per
    /// worker — all reproduce the serial map.
    #[test]
    fn map_indexed_bit_identical_under_adversarial_chunking(
        n in 0usize..600,
        workers in 1usize..12,
        chunk in 1usize..80,
    ) {
        let serial: Vec<u64> = (0..n).map(task).collect();
        let pool = Pool::with_jobs(workers).with_chunk(chunk);
        for _ in 0..3 {
            let parallel = pool.map_indexed(n, task);
            prop_assert_eq!(&parallel, &serial);
        }
    }

    /// Per-worker scratch arenas never leak state between tasks when
    /// used as buffers: a scratch Vec reused across every task a worker
    /// runs still yields the serial output for any topology.
    #[test]
    fn map_indexed_scratch_bit_identical(
        n in 0usize..400,
        workers in 1usize..10,
        chunk in 1usize..48,
    ) {
        let serial: Vec<u64> = (0..n).map(task).collect();
        let pool = Pool::with_jobs(workers).with_chunk(chunk);
        let parallel = pool.map_indexed_scratch(
            n,
            Vec::<u64>::new,
            |buf, i| {
                // Scratch holds capacity, not state: overwrite, use,
                // leave contents behind for the next task to overwrite.
                buf.clear();
                buf.extend((0..(i % 7)).map(|k| k as u64));
                task(i).wrapping_add(buf.iter().sum::<u64>())
                    .wrapping_sub((0..(i % 7) as u64).sum::<u64>())
            },
        );
        prop_assert_eq!(&parallel, &serial);
    }
}

/// The scratch factory runs once per worker, not once per task — the
/// whole point of the arena (satellite 2: allocs must not scale with n).
#[test]
fn scratch_factory_runs_once_per_worker() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let made = AtomicUsize::new(0);
    let pool = Pool::with_jobs(4).with_chunk(2);
    let out = pool.map_indexed_scratch(
        1000,
        || {
            made.fetch_add(1, Ordering::Relaxed);
        },
        |(), i| i,
    );
    assert_eq!(out, (0..1000).collect::<Vec<_>>());
    let factories = made.load(Ordering::Relaxed);
    assert!(
        (1..=4).contains(&factories),
        "scratch built {factories} times for 4 workers"
    );
}
