//! The compiled data plane must be a drop-in replacement for the
//! per-trial interpreter server: same seeds, same packets on the wire,
//! same Table 2 — bit for bit, not just rate-for-rate.

#![allow(clippy::unwrap_used)] // test code

use appproto::AppProtocol;
use censor::Country;
use geneva::library;
use harness::experiments::table2_via;
use harness::{run_trial, TrialConfig};
use netsim::pcap::{to_pcap, CaptureAt};

/// Run the same trial through the interpreter and through `dplane`
/// and demand byte-identical middlebox captures plus matching
/// outcomes.
fn assert_trial_identical(
    country: Country,
    proto: AppProtocol,
    strategy: geneva::Strategy,
    seed: u64,
) {
    let mut interp = TrialConfig::new(country, proto, strategy.clone(), seed);
    interp.route_via_dplane = false;
    let mut compiled = TrialConfig::new(country, proto, strategy, seed);
    compiled.route_via_dplane = true;

    let a = run_trial(&interp);
    let b = run_trial(&compiled);

    assert_eq!(
        a.outcome, b.outcome,
        "{country:?}/{proto} seed {seed}: outcome diverged"
    );
    assert_eq!(a.server_responded, b.server_responded);
    assert_eq!(a.censor_events, b.censor_events);
    assert_eq!(a.truncated, b.truncated);
    for at in [CaptureAt::Client, CaptureAt::Server, CaptureAt::Middlebox] {
        assert_eq!(
            to_pcap(&a.trace, at),
            to_pcap(&b.trace, at),
            "{country:?}/{proto} seed {seed}: {at:?} capture diverged"
        );
    }
}

#[test]
fn trials_bit_identical_via_dplane() {
    // No evasion, a deterministic strategy, and the randomized-corrupt
    // Strategy 1 (exercises the per-site tamper PRNG through the
    // compiled path), across countries/protocols/seeds.
    for seed in [1u64, 7, 42] {
        assert_trial_identical(
            Country::China,
            AppProtocol::Http,
            geneva::Strategy::identity(),
            seed,
        );
        assert_trial_identical(
            Country::China,
            AppProtocol::Smtp,
            library::STRATEGY_8.strategy(),
            seed,
        );
        assert_trial_identical(
            Country::China,
            AppProtocol::Http,
            library::STRATEGY_1.strategy(),
            seed,
        );
    }
    assert_trial_identical(
        Country::Kazakhstan,
        AppProtocol::Https,
        library::STRATEGY_10.strategy(),
        3,
    );
    assert_trial_identical(
        Country::India,
        AppProtocol::Http,
        library::STRATEGY_8.strategy(),
        5,
    );
}

#[test]
fn table2_bit_identical_via_dplane() {
    // Small but real: every measured cell of the paper's headline
    // table, twice — interpreter server vs. compiled dplane server —
    // must agree cell-for-cell.
    let interp = table2_via(2, 1, false);
    let compiled = table2_via(2, 1, true);
    assert_eq!(interp.rows.len(), compiled.rows.len());
    for (ra, rb) in interp.rows.iter().zip(&compiled.rows) {
        assert_eq!(ra.country, rb.country);
        assert_eq!(ra.strategy_id, rb.strategy_id);
        for ((pa, ea), (pb, eb)) in ra.rates.iter().zip(&rb.rates) {
            assert_eq!(pa, pb);
            assert_eq!(
                ea.map(|e| (e.successes, e.trials)),
                eb.map(|e| (e.successes, e.trials)),
                "{:?} strategy {} {pa}: Table 2 cell diverged via dplane",
                ra.country,
                ra.strategy_id
            );
        }
    }
    assert_eq!(compiled.truncated_trials(), 0);
}
