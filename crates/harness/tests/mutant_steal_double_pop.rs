//! Bug-injection self-test: the seeded double-pop window in
//! `steal_half` (peek under one lock, remove under another) must be
//! caught by weave, and the counterexample token must replay the same
//! failure deterministically.
//!
//! One mutant per test binary: the toggles are process-global.
#![cfg(all(feature = "weave", feature = "mutants"))]

use std::sync::atomic::Ordering;
use std::sync::Arc;

use harness::steal::{mutants, ChunkQueue};

/// Two thieves race one two-chunk victim. The mutant plans its theft
/// by peeking the victim's back chunk and removes it under a second
/// lock acquisition — interleave the two thieves and both run the same
/// chunk while another is popped and dropped.
fn model() {
    let victim = Arc::new(ChunkQueue::new());
    victim.seed((0, 2), 1); // chunks (0,1) and (1,2)
    let thieves: Vec<_> = (0..2)
        .map(|_| {
            let victim = Arc::clone(&victim);
            weave::thread::spawn(move || {
                let own = ChunkQueue::new();
                let mut got = Vec::new();
                got.extend(victim.steal_half(&own));
                got.extend(std::iter::from_fn(|| own.pop()));
                got
            })
        })
        .collect();
    let mut seen = vec![0u32; 2];
    for thief in thieves {
        for (s, e) in thief.join().expect("thief panicked") {
            for hit in &mut seen[s..e] {
                *hit += 1;
            }
        }
    }
    for (s, e) in std::iter::from_fn(|| victim.pop()) {
        for hit in &mut seen[s..e] {
            *hit += 1;
        }
    }
    assert!(
        seen.iter().all(|&h| h == 1),
        "indices not covered exactly once: {seen:?}"
    );
}

#[test]
fn weave_detects_mutant_double_pop_with_replayable_token() {
    mutants::STEAL_DOUBLE_POP.store(true, Ordering::SeqCst);
    let cfg = weave::Config::default();
    let report = weave::explore(cfg.clone(), model);
    eprintln!(
        "weave[mutant_steal_double_pop]: {} schedules explored ({} pruned)",
        report.schedules, report.pruned
    );
    let failure = report
        .failure
        .expect("weave must catch the seeded double-pop");
    assert_eq!(failure.kind, weave::FailureKind::Panic);
    eprintln!("counterexample: {} — {}", failure.token, failure.message);
    for _ in 0..2 {
        let again = weave::replay(cfg.clone(), &failure.token, model)
            .expect("replaying the counterexample must fail again");
        assert_eq!(again.kind, failure.kind);
        assert_eq!(again.token, failure.token, "replay must be deterministic");
    }
}
