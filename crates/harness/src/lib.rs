//! # harness — the paper's experiments, end to end
//!
//! Glues the workspace together into runnable experiments:
//!
//! * [`trial`] — one client⇄censor⇄server exchange: pick a country, a
//!   protocol, a server-side strategy (and optionally a client-side
//!   one, an OS profile, instrumentation knobs), run the simulation,
//!   classify the outcome;
//! * [`rates`] — seeded success-rate estimation over many trials;
//! * [`pool`] — the deterministic parallel trial executor every rate
//!   and experiment fans out on (results are bit-identical for any
//!   worker count);
//! * [`seed`] — centralized splitmix64 per-trial seed derivation, so
//!   nearby experiment cells never see correlated seed sequences;
//! * [`waterfall`] — render a trace as a Figure-1/2-style packet
//!   waterfall;
//! * [`experiments`] — one driver per table/figure/section result:
//!   Table 1, Table 2, Figures 1–3, the §3 generalization experiment,
//!   the §5 follow-ups, the §6 TTL probe, and the §7 client
//!   compatibility matrix;
//! * [`deploy`] — §8's per-client strategy selection.
//!
//! ```
//! use harness::{run_trial, TrialConfig};
//! use censor::Country;
//! use appproto::AppProtocol;
//!
//! // One censored exchange: unmodified client in China asks our
//! // server for a forbidden keyword over HTTP. No strategy: censored.
//! let cfg = TrialConfig::new(
//!     Country::China,
//!     AppProtocol::Http,
//!     geneva::Strategy::identity(),
//!     7,
//! );
//! let result = run_trial(&cfg);
//! assert!(!result.evaded());
//!
//! // Behind the paper's Strategy 8 the SMTP censor never wins:
//! let cfg = TrialConfig::new(
//!     Country::China,
//!     AppProtocol::Smtp,
//!     geneva::library::STRATEGY_8.strategy(),
//!     7,
//! );
//! assert!(run_trial(&cfg).evaded());
//! ```

pub mod deploy;
pub mod experiments;
pub mod pool;
pub mod rates;
pub mod screen;
pub mod seed;
pub mod steal;
pub(crate) mod sync_shim;
pub mod trial;
pub mod waterfall;

pub use pool::{Pool, Throughput};
pub use rates::{success_rate, success_rate_in, success_rate_tagged, RateEstimate};
pub use screen::{context_for, ScreenedTrial, Screener};
pub use seed::{cell_tag, derive_trial_seed};
pub use trial::{
    run_trial, run_trial_scratch, CensorVariant, TrialConfig, TrialResult, TrialScratch,
    TrialVerdict,
};
pub use waterfall::render_waterfall;
