//! One experimental trial: unmodified client ⇄ censor ⇄ strategic
//! server.

use appproto::{http, tls, AppProtocol};
use censor::{Carrier, CarrierMiddlebox, Country, Gfw};
use dplane::{Dplane, DplaneConfig, DplaneEndpoint, FixedClassifier, SeedMode};
use endpoint::{ClientApp, ClientHost, OsProfile, Outcome, ServerApp, ServerHost};
use geneva::{Engine, StrategicEndpoint, Strategy};
use netsim::sim::NullMiddlebox;
use netsim::{Endpoint, Io, Middlebox, PathConfig, Simulation, Trace};
use packet::Packet;
use std::sync::Arc;

/// Addresses used throughout the experiments.
pub const CLIENT_ADDR: [u8; 4] = [10, 7, 0, 2];
/// The out-of-country server.
pub const SERVER_ADDR: [u8; 4] = [93, 184, 216, 34];

/// Everything one trial needs.
#[derive(Clone)]
pub struct TrialConfig {
    /// Which censor sits on the path (`None` = private network, used
    /// by the §7 compatibility experiments).
    pub country: Option<Country>,
    /// The application protocol under test.
    pub protocol: AppProtocol,
    /// The server-side strategy (identity = no evasion). Shared, not
    /// owned: hot loops construct thousands of configs per strategy.
    pub strategy: Arc<Strategy>,
    /// An optional client-side strategy (§3 experiments only; an
    /// unmodified client has none).
    pub client_strategy: Option<Arc<Strategy>>,
    /// Client OS profile.
    pub os: OsProfile,
    /// RNG seed — same seed, same trial, bit for bit.
    pub seed: u64,
    /// Path geometry.
    pub path: PathConfig,
    /// Instrumentation: shift outgoing client data seq (§5 follow-ups).
    pub client_seq_adjust: i32,
    /// Instrumentation: client drops its own RSTs (§5 follow-ups).
    pub client_drop_own_rst: bool,
    /// Override the server port (`None` = the country-appropriate
    /// default: random-ish for China, protocol default elsewhere).
    pub server_port: Option<u16>,
    /// Which censor model variant to run (ablations).
    pub censor_variant: CensorVariant,
    /// Client access network for censor-free §7 runs (`None` = a
    /// clean lab network; carriers only apply when `country` is
    /// `None`, matching the paper's non-censoring-country tests).
    pub carrier: Option<Carrier>,
    /// Override the simulator's event cap (`None` = the default
    /// livelock guard). Tests use a tiny cap to force truncation.
    pub event_cap: Option<u64>,
    /// Route the server's traffic through the compiled `dplane`
    /// instead of the per-trial interpreter. Bit-identical results —
    /// asserted by the Table 2 equivalence tests.
    pub route_via_dplane: bool,
}

/// Censor-model variants for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CensorVariant {
    /// The paper's model (five boxes, revised resync rules).
    Standard,
    /// §6 ablation: one shared box/stack for all protocols.
    GfwSingleBox,
    /// Prior work's single-rule resync model (Wang et al. 2017).
    GfwOldResyncModel,
}

impl TrialConfig {
    /// A standard censored-exchange trial. Accepts an owned
    /// [`Strategy`] or a shared `Arc<Strategy>`.
    pub fn new(
        country: Country,
        protocol: AppProtocol,
        strategy: impl Into<Arc<Strategy>>,
        seed: u64,
    ) -> Self {
        TrialConfig {
            country: Some(country),
            protocol,
            strategy: strategy.into(),
            client_strategy: None,
            os: OsProfile::linux(),
            seed,
            path: PathConfig::default(),
            client_seq_adjust: 0,
            client_drop_own_rst: false,
            server_port: None,
            censor_variant: CensorVariant::Standard,
            carrier: None,
            event_cap: None,
            route_via_dplane: false,
        }
    }

    /// A private-network trial (no censor): §7 client compatibility.
    pub fn private_network(
        protocol: AppProtocol,
        strategy: impl Into<Arc<Strategy>>,
        os: OsProfile,
        seed: u64,
    ) -> Self {
        let mut cfg = TrialConfig::new(Country::China, protocol, strategy, seed);
        cfg.country = None;
        cfg.os = os;
        cfg
    }

    fn effective_port(&self) -> u16 {
        if let Some(port) = self.server_port {
            return port;
        }
        match self.country {
            // The GFW censors independent of port; the paper randomizes
            // server ports in China. Derive one from the seed.
            Some(Country::China) => 20000 + (self.seed % 999) as u16,
            // India/Iran/Kazakhstan censor default ports only; a real
            // deployment must sit there to be reachable.
            _ => appproto::default_port(self.protocol),
        }
    }

    /// The forbidden resource for this (country, protocol) pair,
    /// following §4.2's per-country trigger choices.
    pub fn keyword(&self) -> &'static str {
        match (self.country, self.protocol) {
            (Some(Country::China), AppProtocol::Http) => "ultrasurf",
            (_, AppProtocol::Http) => "youtube.com",
            (Some(Country::Iran), AppProtocol::Https) => "youtube.com",
            _ => self.protocol.default_keyword(),
        }
    }

    fn client_app(&self) -> Box<dyn ClientApp> {
        match (self.country, self.protocol) {
            (Some(Country::China), AppProtocol::Http) | (None, AppProtocol::Http) => {
                Box::new(http::HttpClientApp::for_keyword_query(self.keyword()))
            }
            (_, AppProtocol::Http) => {
                Box::new(http::HttpClientApp::for_blocked_host(self.keyword()))
            }
            (Some(Country::Iran), AppProtocol::Https) => {
                Box::new(tls::TlsClientApp::new(self.keyword()))
            }
            _ => appproto::client_app(self.protocol, self.keyword()),
        }
    }
}

/// Recycled per-worker buffers for [`run_trial_scratch`]: the
/// simulator's trace, event queue, and I/O buffers survive from one
/// trial to the next, so a worker that runs thousands of trials grows
/// its buffers once instead of re-allocating them per trial (the fix
/// for allocs_per_trial *rising* with worker count — every worker used
/// to pay the full warm-up for every trial it ran).
///
/// Recycling is invisible to results: buffers are cleared on the way
/// into each simulation, so a scratch trial is bit-identical to a
/// fresh [`run_trial`] — asserted by the pool determinism tests.
#[derive(Debug, Default)]
pub struct TrialScratch {
    buffers: netsim::SimBuffers,
}

impl TrialScratch {
    /// Fresh, empty scratch (buffers grow on first use).
    pub fn new() -> TrialScratch {
        TrialScratch::default()
    }

    /// The last trial's trace — readable until the next
    /// [`run_trial_scratch`] call reuses the buffer.
    pub fn trace(&self) -> &Trace {
        &self.buffers.trace
    }
}

/// A trial's outcome without its trace ([`run_trial_scratch`]'s
/// return): everything rate estimation folds over. The trace stays
/// readable in the scratch via [`TrialScratch::trace`] until the next
/// trial overwrites it.
#[derive(Debug, Clone, Copy)]
pub struct TrialVerdict {
    /// The client's final outcome.
    pub outcome: Outcome,
    /// Did the server application ever answer a complete request?
    pub server_responded: bool,
    /// Total censorship events the middlebox logged.
    pub censor_events: u64,
    /// Why the simulation stopped.
    pub stop: netsim::StopReason,
    /// The event cap cut this trial short (see [`TrialResult`]).
    pub truncated: bool,
}

impl TrialVerdict {
    /// The paper's success criterion.
    pub fn evaded(&self) -> bool {
        self.outcome.is_success()
    }
}

/// The result of one trial.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// The client's final outcome.
    pub outcome: Outcome,
    /// The full packet trace.
    pub trace: Trace,
    /// Did the server application ever answer a complete request?
    pub server_responded: bool,
    /// Total censorship events the middlebox logged (0 for the
    /// private network).
    pub censor_events: u64,
    /// Why the simulation stopped.
    pub stop: netsim::StopReason,
    /// The simulator's event cap cut this trial short: the outcome
    /// reflects the cutoff, not the protocols. A pathological strategy
    /// provoking a retransmit/RST storm used to be silently scored
    /// "censored"; consumers now count these separately.
    pub truncated: bool,
}

impl TrialResult {
    /// The paper's success criterion.
    pub fn evaded(&self) -> bool {
        self.outcome.is_success()
    }
}

/// A middlebox that also exposes a censor-event counter.
enum Box_ {
    None(NullMiddlebox),
    Censor(Box<dyn Middlebox>),
}

/// The server behind either wire interface: the per-trial interpreter
/// (`StrategicEndpoint`) or the compiled data plane (`DplaneEndpoint`).
/// One enum keeps `run_trial`'s simulation code monomorphic.
enum ServerWrap {
    Interpreter(StrategicEndpoint<ServerHost<Box<dyn ServerApp>>>),
    Dplane(DplaneEndpoint<ServerHost<Box<dyn ServerApp>>, FixedClassifier>),
}

impl ServerWrap {
    fn responded_any(&self) -> bool {
        match self {
            ServerWrap::Interpreter(s) => s.inner.responded_any(),
            ServerWrap::Dplane(s) => s.inner.responded_any(),
        }
    }
}

impl Endpoint for ServerWrap {
    fn on_start(&mut self, now: u64, io: &mut Io) {
        match self {
            ServerWrap::Interpreter(s) => s.on_start(now, io),
            ServerWrap::Dplane(s) => s.on_start(now, io),
        }
    }

    fn on_packet(&mut self, pkt: Packet, now: u64, io: &mut Io) {
        match self {
            ServerWrap::Interpreter(s) => s.on_packet(pkt, now, io),
            ServerWrap::Dplane(s) => s.on_packet(pkt, now, io),
        }
    }

    fn on_wake(&mut self, now: u64, io: &mut Io) {
        match self {
            ServerWrap::Interpreter(s) => s.on_wake(now, io),
            ServerWrap::Dplane(s) => s.on_wake(now, io),
        }
    }
}

/// Run one trial to completion (up to 30 simulated seconds).
pub fn run_trial(cfg: &TrialConfig) -> TrialResult {
    let mut scratch = TrialScratch::new();
    let verdict = run_trial_scratch(cfg, &mut scratch);
    TrialResult {
        outcome: verdict.outcome,
        server_responded: verdict.server_responded,
        censor_events: verdict.censor_events,
        stop: verdict.stop,
        truncated: verdict.truncated,
        trace: scratch.buffers.trace,
    }
}

/// [`run_trial`] with recycled buffers: identical results (the scratch
/// is cleared on the way in), but the simulator's trace/queue/IO
/// allocations are reused across calls instead of re-created per
/// trial. This is the hot path [`crate::rates::success_rate_in`] runs
/// through the pool's per-worker scratch arenas.
pub fn run_trial_scratch(cfg: &TrialConfig, scratch: &mut TrialScratch) -> TrialVerdict {
    let port = cfg.effective_port();
    let mut client_host = ClientHost::new(
        cfg.client_app(),
        cfg.os,
        CLIENT_ADDR,
        41000 + (cfg.seed % 499) as u16,
        (SERVER_ADDR, port),
        cfg.seed ^ 0xC11E_57A7,
    );
    client_host.seq_adjust = cfg.client_seq_adjust;
    client_host.drop_own_rst = cfg.client_drop_own_rst;

    let server_host = ServerHost::new(
        server_app_for(cfg.protocol),
        SERVER_ADDR,
        port,
        cfg.seed ^ 0x5E47_ED00,
    );

    let client = StrategicEndpoint::new(
        client_host,
        Engine::new(
            cfg.client_strategy
                .clone()
                .unwrap_or_else(|| Arc::new(Strategy::identity())),
            cfg.seed ^ 0xC0DE,
        ),
    );
    let server = if cfg.route_via_dplane {
        ServerWrap::Dplane(DplaneEndpoint::new(
            server_host,
            Dplane::new(
                DplaneConfig {
                    seed: SeedMode::Fixed(cfg.seed ^ 0x5EED),
                    ..DplaneConfig::default()
                },
                FixedClassifier(Some(Arc::clone(&cfg.strategy))),
            ),
        ))
    } else {
        ServerWrap::Interpreter(StrategicEndpoint::new(
            server_host,
            Engine::new(Arc::clone(&cfg.strategy), cfg.seed ^ 0x5EED),
        ))
    };

    let middlebox = match (cfg.country, cfg.censor_variant) {
        (None, _) => match cfg.carrier {
            Some(carrier) => Box_::Censor(Box::new(CarrierMiddlebox::new(carrier))),
            None => Box_::None(NullMiddlebox),
        },
        (Some(Country::China), CensorVariant::GfwSingleBox) => {
            Box_::Censor(Box::new(Gfw::single_box_ablation(cfg.seed ^ 0xCE50)))
        }
        (Some(Country::China), CensorVariant::GfwOldResyncModel) => {
            Box_::Censor(Box::new(Gfw::old_resync_model(cfg.seed ^ 0xCE50)))
        }
        (Some(country), _) => Box_::Censor(country.build(cfg.seed ^ 0xCE50)),
    };

    let buffers = std::mem::take(&mut scratch.buffers);
    match middlebox {
        Box_::None(mb) => {
            let mut sim = Simulation::with_path_buffers(client, server, mb, cfg.path, buffers);
            if let Some(cap) = cfg.event_cap {
                sim.max_events = cap;
            }
            let stop = sim.run(30_000_000);
            let verdict = TrialVerdict {
                outcome: sim.client.inner.outcome(),
                server_responded: sim.server.responded_any(),
                censor_events: 0,
                stop,
                truncated: stop.truncated(),
            };
            scratch.buffers = sim.into_buffers();
            verdict
        }
        Box_::Censor(mb) => {
            let mut sim = Simulation::with_path_buffers(client, server, mb, cfg.path, buffers);
            if let Some(cap) = cfg.event_cap {
                sim.max_events = cap;
            }
            let stop = sim.run(30_000_000);
            let verdict = TrialVerdict {
                outcome: sim.client.inner.outcome(),
                server_responded: sim.server.responded_any(),
                censor_events: sim.trace.count(|e| {
                    matches!(
                        e,
                        netsim::TraceEvent::Injected { .. }
                            | netsim::TraceEvent::DroppedByMiddlebox { .. }
                    )
                }) as u64,
                stop,
                truncated: stop.truncated(),
            };
            scratch.buffers = sim.into_buffers();
            verdict
        }
    }
}

fn server_app_for(proto: AppProtocol) -> Box<dyn ServerApp> {
    appproto::server_app(proto)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;
    use geneva::library;

    #[test]
    fn no_censor_every_protocol_succeeds() {
        for proto in AppProtocol::all() {
            let cfg =
                TrialConfig::private_network(proto, Strategy::identity(), OsProfile::linux(), 7);
            let result = run_trial(&cfg);
            assert_eq!(result.outcome, Outcome::Success, "{proto}");
            assert!(result.server_responded, "{proto}");
        }
    }

    #[test]
    fn china_censors_every_protocol_without_evasion() {
        // With miss rates a few percent, seed 3 must be censored for
        // all protocols (deterministic given the seed).
        for proto in AppProtocol::all() {
            let mut censored = 0;
            for seed in 0..10 {
                let cfg = TrialConfig::new(Country::China, proto, Strategy::identity(), seed);
                let result = run_trial(&cfg);
                if !result.evaded() {
                    censored += 1;
                }
            }
            assert!(censored >= 6, "{proto}: censored only {censored}/10");
        }
    }

    #[test]
    fn india_iran_kazakhstan_censor_http() {
        for country in [Country::India, Country::Iran, Country::Kazakhstan] {
            let cfg = TrialConfig::new(country, AppProtocol::Http, Strategy::identity(), 5);
            let result = run_trial(&cfg);
            assert!(!result.evaded(), "{country}");
            match country {
                Country::India | Country::Kazakhstan => {
                    assert_eq!(result.outcome, Outcome::BlockPage, "{country}")
                }
                Country::Iran => assert_eq!(result.outcome, Outcome::Timeout, "{country}"),
                _ => {}
            }
        }
    }

    #[test]
    fn strategy_8_beats_india_iran_kazakhstan() {
        let strategy = library::STRATEGY_8.strategy();
        for country in [Country::India, Country::Iran, Country::Kazakhstan] {
            for seed in 0..5 {
                let cfg = TrialConfig::new(country, AppProtocol::Http, strategy.clone(), seed);
                let result = run_trial(&cfg);
                assert!(
                    result.evaded(),
                    "{country} seed {seed}: {:?}",
                    result.outcome
                );
            }
        }
    }

    #[test]
    fn strategy_8_beats_iran_https() {
        let strategy = library::STRATEGY_8.strategy();
        for seed in 0..5 {
            let cfg = TrialConfig::new(Country::Iran, AppProtocol::Https, strategy.clone(), seed);
            assert!(run_trial(&cfg).evaded(), "seed {seed}");
        }
    }

    #[test]
    fn kazakhstan_strategies_9_10_11_work() {
        for named in [
            library::STRATEGY_9,
            library::STRATEGY_10,
            library::STRATEGY_11,
        ] {
            for seed in 0..5 {
                let cfg = TrialConfig::new(
                    Country::Kazakhstan,
                    AppProtocol::Http,
                    named.strategy(),
                    seed,
                );
                let result = run_trial(&cfg);
                assert!(
                    result.evaded(),
                    "strategy {} seed {seed}: {:?}",
                    named.id,
                    result.outcome
                );
            }
        }
    }

    #[test]
    fn kazakhstan_strategies_9_10_11_unmodified_fails() {
        // Control: without a strategy Kazakhstan censors.
        let cfg = TrialConfig::new(
            Country::Kazakhstan,
            AppProtocol::Http,
            Strategy::identity(),
            9,
        );
        assert!(!run_trial(&cfg).evaded());
    }

    #[test]
    fn iran_off_port_hosting_is_uncensored() {
        let mut cfg = TrialConfig::new(Country::Iran, AppProtocol::Http, Strategy::identity(), 5);
        cfg.server_port = Some(8080);
        assert!(run_trial(&cfg).evaded(), "non-default port escapes Iran");
    }

    #[test]
    fn tiny_event_cap_forces_and_flags_truncation() {
        let mut cfg = TrialConfig::new(
            Country::China,
            AppProtocol::Http,
            library::STRATEGY_1.strategy(),
            3,
        );
        cfg.event_cap = Some(4); // a handshake alone needs more events
        let result = run_trial(&cfg);
        assert!(result.truncated, "4-event cap must truncate");
        assert_eq!(result.stop, netsim::StopReason::EventLimit);

        // The same trial under the default guard completes untruncated.
        cfg.event_cap = None;
        let result = run_trial(&cfg);
        assert!(!result.truncated);
        assert_ne!(result.stop, netsim::StopReason::EventLimit);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_trials() {
        // One scratch recycled across censored/uncensored/dplane-routed
        // trials must reproduce every fresh result, including traces:
        // recycling is capacity-only, never state.
        let mut scratch = TrialScratch::new();
        let mut cfgs = vec![
            TrialConfig::new(
                Country::China,
                AppProtocol::Http,
                library::STRATEGY_1.strategy(),
                77,
            ),
            TrialConfig::private_network(
                AppProtocol::Http,
                Strategy::identity(),
                OsProfile::linux(),
                3,
            ),
            TrialConfig::new(
                Country::Kazakhstan,
                AppProtocol::Http,
                Strategy::identity(),
                9,
            ),
        ];
        let mut routed = TrialConfig::new(
            Country::India,
            AppProtocol::Http,
            library::STRATEGY_8.strategy(),
            5,
        );
        routed.route_via_dplane = true;
        cfgs.push(routed);

        for cfg in &cfgs {
            let fresh = run_trial(cfg);
            let recycled = run_trial_scratch(cfg, &mut scratch);
            assert_eq!(fresh.outcome, recycled.outcome);
            assert_eq!(fresh.server_responded, recycled.server_responded);
            assert_eq!(fresh.censor_events, recycled.censor_events);
            assert_eq!(fresh.stop, recycled.stop);
            assert_eq!(fresh.truncated, recycled.truncated);
            assert_eq!(
                fresh.trace.events.len(),
                scratch.trace().events.len(),
                "recycled trace diverged"
            );
        }
    }

    #[test]
    fn trials_are_deterministic_per_seed() {
        let cfg = TrialConfig::new(
            Country::China,
            AppProtocol::Http,
            library::STRATEGY_1.strategy(),
            1234,
        );
        let a = run_trial(&cfg);
        let b = run_trial(&cfg);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.trace.events.len(), b.trace.events.len());
    }
}
