//! `steal` — chunk-granular work-stealing queues for the trial pool.
//!
//! The pool's old handout was a single atomic index counter: every
//! worker bumped the same cache line for every chunk, and a worker that
//! drew a long chunk near the end gated the whole batch while the other
//! workers spun on an empty counter. Work stealing fixes both ends:
//!
//! * **Local-first** — the index space `0..n` is pre-split into one
//!   contiguous block per worker, each block cut into chunk-sized
//!   ranges. A worker pops from the *front* of its own queue, so the
//!   steady state touches only worker-local state (one uncontended
//!   mutex whose critical section is a `VecDeque` pop).
//! * **Steal-half** — a worker that drains its queue picks victims in
//!   a deterministic ring order and moves *half* of the victim's
//!   remaining chunks (from the back, farthest from the owner's next
//!   pop) into its own queue. Halving keeps the stolen work stealable
//!   again, so a straggler's backlog spreads across all idle workers
//!   in `O(log chunks)` steals instead of being nibbled one chunk at a
//!   time.
//!
//! Determinism: chunks only describe *which indices* a worker runs —
//! task `i` is a pure function of `i` — so the set of executed indices
//! is exactly `0..n` regardless of steal order, and the pool's
//! index-ordered scatter makes the reduction bit-identical for any
//! worker count, chunk size, or scheduling interleaving (proptested in
//! `tests/pool_props.rs`).
//!
//! Locking discipline: `pop` takes only the owner's lock; `steal_half`
//! takes the victim's lock, drains the stolen ranges into a scratch
//! `Vec`, releases, and only then takes the thief's own lock — no call
//! path ever holds two queue locks, so cross-stealing cannot deadlock.

use std::collections::VecDeque;

use crate::sync_shim::{lock_unpoisoned, Mutex};

/// Runtime-toggleable seeded bugs for weave's bug-injection
/// self-test (`--features weave,mutants`). Every toggle defaults to
/// off, so the correct code paths stay in force until a mutant test
/// flips one — and each mutant test lives in its own test binary so
/// the process-global toggles cannot bleed across tests.
#[cfg(feature = "mutants")]
pub mod mutants {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// BUG(seeded): `steal_half` plans its theft by *peeking* the
    /// victim's back chunk under one lock acquisition and *removes*
    /// under a second — a double-pop window. A concurrent thief (or
    /// the owner) can take the planned chunk in between: both run it
    /// (duplication) and an innocent chunk gets popped and dropped
    /// (loss).
    pub static STEAL_DOUBLE_POP: AtomicBool = AtomicBool::new(false);

    pub(crate) fn steal_double_pop() -> bool {
        STEAL_DOUBLE_POP.load(Ordering::Relaxed)
    }
}

/// A half-open index range `[start, end)` — one chunk of pool work.
pub type Chunk = (usize, usize);

/// One worker's chunk queue. Owner pops the front; thieves take half
/// from the back.
#[derive(Debug, Default)]
pub struct ChunkQueue {
    chunks: Mutex<VecDeque<Chunk>>,
}

impl ChunkQueue {
    /// An empty queue.
    pub fn new() -> ChunkQueue {
        ChunkQueue::default()
    }

    /// Seed the queue with `block` split into `chunk`-sized ranges
    /// (the last range may be short). `chunk` is clamped to ≥ 1.
    pub fn seed(&self, block: Chunk, chunk: usize) {
        let chunk = chunk.max(1);
        let mut q = lock_unpoisoned(&self.chunks);
        let (mut start, end) = block;
        while start < end {
            let stop = (start + chunk).min(end);
            q.push_back((start, stop));
            start = stop;
        }
    }

    /// Owner-side pop: the next chunk in index order, front of the
    /// queue.
    pub fn pop(&self) -> Option<Chunk> {
        lock_unpoisoned(&self.chunks).pop_front()
    }

    /// Number of queued chunks (diagnostics/tests).
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.chunks).len()
    }

    /// True when no chunks are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Thief-side steal: move the back half (rounded up) of this
    /// queue's chunks into `into`, returning the first stolen chunk for
    /// the thief to run immediately. Returns `None` when there was
    /// nothing to steal. Never holds both locks at once.
    pub fn steal_half(&self, into: &ChunkQueue) -> Option<Chunk> {
        #[cfg(feature = "mutants")]
        if mutants::steal_double_pop() {
            // BUG(seeded): peek under one lock, remove under another.
            let planned = lock_unpoisoned(&self.chunks).back().copied();
            let chunk = planned?;
            lock_unpoisoned(&self.chunks).pop_back();
            return Some(chunk);
        }
        let stolen: Vec<Chunk> = {
            let mut victim = lock_unpoisoned(&self.chunks);
            let take = victim.len().div_ceil(2);
            if take == 0 {
                return None;
            }
            let keep = victim.len() - take;
            victim.split_off(keep).into()
        };
        let mut iter = stolen.into_iter();
        let first = iter.next();
        let rest: Vec<Chunk> = iter.collect();
        if !rest.is_empty() {
            let mut own = lock_unpoisoned(&into.chunks);
            own.extend(rest);
        }
        first
    }
}

/// Build one seeded queue per worker: `0..n` split into `workers`
/// contiguous blocks (remainder spread over the leading blocks), each
/// block cut into `chunk`-sized ranges.
pub fn seed_queues(n: usize, workers: usize, chunk: usize) -> Vec<ChunkQueue> {
    let workers = workers.max(1);
    let queues: Vec<ChunkQueue> = (0..workers).map(|_| ChunkQueue::new()).collect();
    let base = n / workers;
    let extra = n % workers;
    let mut start = 0;
    for (w, queue) in queues.iter().enumerate() {
        let len = base + usize::from(w < extra);
        queue.seed((start, start + len), chunk);
        start += len;
    }
    debug_assert_eq!(start, n);
    queues
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code
    use super::*;

    fn drain(q: &ChunkQueue) -> Vec<Chunk> {
        std::iter::from_fn(|| q.pop()).collect()
    }

    #[test]
    fn seed_splits_into_chunks_covering_the_block() {
        let q = ChunkQueue::new();
        q.seed((3, 17), 4);
        assert_eq!(drain(&q), vec![(3, 7), (7, 11), (11, 15), (15, 17)]);
    }

    #[test]
    fn seed_queues_cover_exactly_zero_to_n() {
        for (n, workers, chunk) in [(0, 1, 1), (7, 3, 2), (100, 8, 16), (5, 8, 1)] {
            let queues = seed_queues(n, workers, chunk);
            assert_eq!(queues.len(), workers.max(1));
            let mut seen = vec![false; n];
            for q in &queues {
                for (s, e) in drain(q) {
                    for slot in &mut seen[s..e] {
                        assert!(!*slot, "index covered twice");
                        *slot = true;
                    }
                }
            }
            assert!(seen.iter().all(|&b| b), "n={n} workers={workers}");
        }
    }

    #[test]
    fn steal_takes_the_back_half() {
        let victim = ChunkQueue::new();
        victim.seed((0, 8), 2); // chunks (0,2) (2,4) (4,6) (6,8)
        let thief = ChunkQueue::new();
        let first = victim.steal_half(&thief).unwrap();
        // Back half = (4,6),(6,8): thief runs (4,6) and queues (6,8).
        assert_eq!(first, (4, 6));
        assert_eq!(drain(&thief), vec![(6, 8)]);
        // Owner keeps the front half, still in index order.
        assert_eq!(drain(&victim), vec![(0, 2), (2, 4)]);
    }

    #[test]
    fn steal_from_empty_returns_none() {
        let victim = ChunkQueue::new();
        let thief = ChunkQueue::new();
        assert!(victim.steal_half(&thief).is_none());
        assert!(thief.is_empty());
    }

    #[test]
    fn single_chunk_steal_moves_it_whole() {
        let victim = ChunkQueue::new();
        victim.seed((0, 3), 8);
        let thief = ChunkQueue::new();
        assert_eq!(victim.steal_half(&thief), Some((0, 3)));
        assert!(victim.is_empty());
        assert!(thief.is_empty(), "nothing left over to queue");
    }

    /// Concurrent owners + thieves never lose or duplicate an index —
    /// the test the TSan CI job runs under the thread sanitizer.
    #[test]
    fn concurrent_stealing_covers_every_index_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        const N: usize = 4096;
        let queues = seed_queues(N, 4, 8);
        let hits: Vec<AtomicU32> = (0..N).map(|_| AtomicU32::new(0)).collect();
        std::thread::scope(|scope| {
            for w in 0..queues.len() {
                let queues = &queues;
                let hits = &hits;
                scope.spawn(move || loop {
                    let chunk = queues[w].pop().or_else(|| {
                        (1..queues.len())
                            .find_map(|v| queues[(w + v) % queues.len()].steal_half(&queues[w]))
                    });
                    match chunk {
                        Some((s, e)) => {
                            for hit in &hits[s..e] {
                                hit.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        None => break,
                    }
                });
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
