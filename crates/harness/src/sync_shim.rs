//! Cfg-gated sync facade: `std::sync` in production, `weave::sync`
//! under the `weave` feature so model tests can explore every
//! interleaving of this crate's concurrent structures.
//!
//! Production builds never see weave — the aliases below *are*
//! `std::sync` types, so there is zero runtime or binary-size cost.
//! With `--features weave`, the same source compiles against the
//! model-checker shims; outside a `weave::explore` run those shims
//! fall through to std, so the whole suite still works.
//!
//! The `*_unpoisoned` helpers replace `.lock().expect("poisoned")`
//! cascades: when a worker panics while holding a lock, every other
//! worker used to die on a secondary `PoisonError` panic, burying the
//! original backtrace under a wall of noise. Recovering the guard
//! lets the panicking thread surface its own story. The guarded data
//! here (chunk queues of index ranges) stays structurally valid at
//! every await-free critical section, so continuing past poison is
//! sound — at worst a range the panicking worker had popped is simply
//! gone, which the pool already treats as that worker's failure.

#[cfg(feature = "weave")]
pub(crate) use weave::sync::{Mutex, MutexGuard};

#[cfg(not(feature = "weave"))]
pub(crate) use std::sync::{Mutex, MutexGuard};

use std::sync::PoisonError;

/// Lock a mutex, recovering the guard if a previous holder panicked.
pub(crate) fn lock_unpoisoned<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}
