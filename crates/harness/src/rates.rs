//! Seeded success-rate estimation.

use crate::trial::{run_trial, TrialConfig};

/// A success-rate estimate over `trials` seeded runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateEstimate {
    /// Successful evasions.
    pub successes: u32,
    /// Total trials.
    pub trials: u32,
}

impl RateEstimate {
    /// Fraction in [0, 1].
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        f64::from(self.successes) / f64::from(self.trials)
    }

    /// Rendered as the paper's integer percentages.
    #[allow(clippy::cast_possible_truncation)] // clamped to [0,100]
    pub fn percent(&self) -> u32 {
        (self.rate() * 100.0).round().clamp(0.0, 100.0) as u32
    }

    /// A ~95 % normal-approximation half-width, for sanity bands.
    pub fn margin(&self) -> f64 {
        if self.trials == 0 {
            return 1.0;
        }
        let p = self.rate();
        1.96 * (p * (1.0 - p) / f64::from(self.trials)).sqrt()
    }
}

impl std::fmt::Display for RateEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}%", self.percent())
    }
}

/// Run `trials` trials of `cfg` with seeds `base_seed..base_seed+trials`.
pub fn success_rate(cfg: &TrialConfig, trials: u32, base_seed: u64) -> RateEstimate {
    let mut successes = 0;
    for i in 0..trials {
        let mut c = cfg.clone();
        c.seed = base_seed + u64::from(i) * 7919;
        if run_trial(&c).evaded() {
            successes += 1;
        }
    }
    RateEstimate { successes, trials }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;
    use appproto::AppProtocol;
    use censor::Country;
    use geneva::{library, Strategy};

    #[test]
    fn estimate_arithmetic() {
        let e = RateEstimate {
            successes: 54,
            trials: 100,
        };
        assert_eq!(e.percent(), 54);
        assert!((e.rate() - 0.54).abs() < 1e-9);
        assert!(e.margin() > 0.0 && e.margin() < 0.2);
        assert_eq!(e.to_string(), "54%");
    }

    #[test]
    fn no_evasion_china_http_is_near_zero() {
        let cfg = TrialConfig::new(Country::China, AppProtocol::Http, Strategy::identity(), 0);
        let e = success_rate(&cfg, 60, 100);
        assert!(e.rate() < 0.15, "no-evasion rate {e}");
    }

    #[test]
    fn strategy_1_china_http_is_near_half() {
        let cfg = TrialConfig::new(
            Country::China,
            AppProtocol::Http,
            library::STRATEGY_1.strategy(),
            0,
        );
        let e = success_rate(&cfg, 80, 100);
        assert!(
            (0.35..=0.75).contains(&e.rate()),
            "strategy 1 rate {e} out of band"
        );
    }
}
