//! Seeded success-rate estimation, fanned out over the trial pool.

use crate::pool::{self, Pool};
use crate::seed::derive_trial_seed;
use crate::trial::{run_trial_scratch, TrialConfig, TrialScratch};

/// A success-rate estimate over `trials` seeded runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateEstimate {
    /// Successful evasions.
    pub successes: u32,
    /// Total trials.
    pub trials: u32,
    /// Trials the simulator cut off at its event cap (livelock guard).
    /// Always 0 for the paper's experiments — a nonzero count means
    /// the estimate is measuring the cutoff, not the protocols.
    pub truncated: u32,
}

impl RateEstimate {
    /// An estimate of `successes` out of `trials`, none truncated.
    pub fn of(successes: u32, trials: u32) -> RateEstimate {
        RateEstimate {
            successes,
            trials,
            truncated: 0,
        }
    }

    /// Fraction in [0, 1].
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        f64::from(self.successes) / f64::from(self.trials)
    }

    /// Rendered as the paper's integer percentages.
    #[allow(clippy::cast_possible_truncation)] // clamped to [0,100]
    pub fn percent(&self) -> u32 {
        (self.rate() * 100.0).round().clamp(0.0, 100.0) as u32
    }

    /// A ~95 % half-width from the Wilson score interval.
    ///
    /// The normal approximation (`1.96·√(p(1−p)/n)`) collapses to 0 at
    /// p = 0 or 1, printing "0/300" as a certainty. Wilson keeps
    /// rule-of-three-style behavior at the extremes: at p̂ = 0 the
    /// half-width is z²/(2(n+z²)) ≈ 1.9/n, never zero for finite n.
    pub fn margin(&self) -> f64 {
        if self.trials == 0 {
            return 1.0;
        }
        let n = f64::from(self.trials);
        let p = self.rate();
        let z = 1.96_f64;
        let z2 = z * z;
        z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / (1.0 + z2 / n)
    }

    /// The Wilson 95 % interval itself, clamped to [0, 1].
    pub fn wilson_interval(&self) -> (f64, f64) {
        if self.trials == 0 {
            return (0.0, 1.0);
        }
        let n = f64::from(self.trials);
        let p = self.rate();
        let z2 = 1.96_f64 * 1.96;
        let center = (p + z2 / (2.0 * n)) / (1.0 + z2 / n);
        let half = self.margin();
        // At p̂ = 1 the upper bound is algebraically exact:
        // (1 + z²/2n + z²/2n)/(1 + z²/n) ≡ 1 (symmetrically 0 at
        // p̂ = 0), but the two divisions leave a one-ulp residue.
        // Pin the endpoints so callers comparing against the exact
        // boundary agree with the algebra.
        let lo = if self.successes == 0 {
            0.0
        } else {
            (center - half).max(0.0)
        };
        let hi = if self.successes == self.trials {
            1.0
        } else {
            (center + half).min(1.0)
        };
        (lo, hi)
    }
}

impl std::fmt::Display for RateEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}%", self.percent())
    }
}

/// Run `trials` seeded trials of `cfg` on the process-default pool.
/// Trial `i` uses seed `derive_trial_seed(base_seed, 0, i)`.
pub fn success_rate(cfg: &TrialConfig, trials: u32, base_seed: u64) -> RateEstimate {
    success_rate_in(&Pool::global(), cfg, trials, base_seed, 0)
}

/// [`success_rate`] with an explicit cell tag, decorrelating this
/// cell's seed sequence from every other cell sharing `base_seed`.
pub fn success_rate_tagged(
    cfg: &TrialConfig,
    trials: u32,
    base_seed: u64,
    cell_tag: u64,
) -> RateEstimate {
    success_rate_in(&Pool::global(), cfg, trials, base_seed, cell_tag)
}

/// [`success_rate_tagged`] on an explicit pool. The reduction is a
/// fold over index-ordered per-trial outcomes, so the estimate is
/// bit-identical for any worker count.
pub fn success_rate_in(
    pool: &Pool,
    cfg: &TrialConfig,
    trials: u32,
    base_seed: u64,
    cell_tag: u64,
) -> RateEstimate {
    // Per-worker scratch: each pool worker grows one set of simulator
    // buffers and recycles it across every trial it runs, so
    // allocations per trial stay flat as workers are added.
    let outcomes = pool.map_indexed_scratch(trials as usize, TrialScratch::new, |scratch, i| {
        let mut c = cfg.clone();
        #[allow(clippy::cast_possible_truncation)] // i < trials: u32
        let index = i as u32;
        c.seed = derive_trial_seed(base_seed, cell_tag, index);
        let verdict = run_trial_scratch(&c, scratch);
        (verdict.evaded(), verdict.truncated)
    });
    pool::record_trials(u64::from(trials));
    let mut estimate = RateEstimate::of(0, trials);
    for (evaded, truncated) in outcomes {
        if evaded {
            estimate.successes += 1;
        }
        if truncated {
            estimate.truncated += 1;
        }
    }
    estimate
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;
    use appproto::AppProtocol;
    use censor::Country;
    use geneva::{library, Strategy};

    #[test]
    fn estimate_arithmetic() {
        let e = RateEstimate::of(54, 100);
        assert_eq!(e.percent(), 54);
        assert!((e.rate() - 0.54).abs() < 1e-9);
        assert!(e.margin() > 0.0 && e.margin() < 0.2);
        assert_eq!(e.to_string(), "54%");
    }

    #[test]
    fn margin_is_never_zero_at_the_extremes() {
        // "0/300" is not a certainty: Wilson keeps a rule-of-three
        // style band where the normal approximation collapses to 0.
        for (successes, trials) in [(0u32, 300u32), (300, 300), (0, 10), (50, 50)] {
            let e = RateEstimate::of(successes, trials);
            assert!(
                e.margin() > 0.0,
                "{successes}/{trials} produced a zero margin"
            );
        }
        // Rule-of-three scale: 0/300 half-width ≈ z²/(2(n+z²)) ≈ 0.6 %.
        let e = RateEstimate::of(0, 300);
        assert!((0.002..0.02).contains(&e.margin()), "{}", e.margin());
        // And the interval stays inside [0, 1].
        let (lo, hi) = e.wilson_interval();
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.05);
        let (lo, hi) = RateEstimate::of(300, 300).wilson_interval();
        assert!(lo > 0.95 && lo < 1.0);
        assert_eq!(hi, 1.0);
    }

    #[test]
    fn wilson_agrees_with_normal_approximation_mid_range() {
        let e = RateEstimate::of(150, 300);
        let normal = 1.96 * (0.5 * 0.5 / 300.0_f64).sqrt();
        assert!((e.margin() - normal).abs() < 0.005, "{}", e.margin());
    }

    #[test]
    fn no_evasion_china_http_is_near_zero() {
        let cfg = TrialConfig::new(Country::China, AppProtocol::Http, Strategy::identity(), 0);
        let e = success_rate(&cfg, 60, 100);
        assert!(e.rate() < 0.15, "no-evasion rate {e}");
        assert_eq!(e.truncated, 0);
    }

    #[test]
    fn strategy_1_china_http_is_near_half() {
        let cfg = TrialConfig::new(
            Country::China,
            AppProtocol::Http,
            library::STRATEGY_1.strategy(),
            0,
        );
        let e = success_rate(&cfg, 80, 100);
        assert!(
            (0.35..=0.75).contains(&e.rate()),
            "strategy 1 rate {e} out of band"
        );
    }

    #[test]
    fn worker_count_is_invisible_in_the_estimate() {
        let cfg = TrialConfig::new(
            Country::China,
            AppProtocol::Http,
            library::STRATEGY_1.strategy(),
            0,
        );
        let serial = success_rate_in(&Pool::with_jobs(1), &cfg, 40, 7, 0x7AB);
        for workers in [2, 8] {
            let parallel = success_rate_in(&Pool::with_jobs(workers), &cfg, 40, 7, 0x7AB);
            assert_eq!(serial, parallel, "jobs={workers}");
        }
    }

    #[test]
    fn cell_tags_decorrelate_estimates() {
        let cfg = TrialConfig::new(
            Country::China,
            AppProtocol::Http,
            library::STRATEGY_1.strategy(),
            0,
        );
        // Same base seed, different tags ⇒ different trial sequences
        // (with overwhelming probability for a ~50 % strategy).
        let a = success_rate_tagged(&cfg, 60, 7, 1);
        let b = success_rate_tagged(&cfg, 60, 7, 2);
        assert!((0.2..=0.8).contains(&a.rate()));
        assert!((0.2..=0.8).contains(&b.rate()));
    }
}
