//! `pool` — a deterministic parallel trial executor.
//!
//! Every trial in this repository is an independent, seeded, pure
//! function of its [`crate::TrialConfig`] — the ideal fan-out workload.
//! The pool runs `n` indexed tasks across worker threads
//! (`std::thread::scope`, no external dependencies) and returns their
//! results **in index order**, so any reduction over the results is
//! bit-identical regardless of worker count:
//!
//! * work is handed out through chunk-granular **work-stealing
//!   queues** ([`crate::steal`]): each worker owns a contiguous block
//!   of the index space pre-split into chunks, pops locally, and
//!   steals half a victim's backlog when it drains — which *worker*
//!   runs task `i` varies between runs, but task `i` itself is a pure
//!   function of `i` (trial seeds come from
//!   [`crate::seed::derive_trial_seed`], never from execution order);
//! * each worker buffers `(start, results)` runs; after the scope
//!   joins, runs are scattered back into an index-ordered `Vec`.
//!
//! Workers that need per-worker state — scratch arenas the trial loop
//! reuses across its whole share of the batch — go through
//! [`Pool::map_indexed_scratch`]: the scratch factory runs once per
//! worker, not once per task, so the allocation cost of worker state
//! is `O(workers)`, never `O(n)`.
//!
//! Nested calls (an experiment parallelizes over cells, and each cell's
//! `success_rate` would parallelize over trials) degrade gracefully:
//! a `map_indexed` issued *from inside a pool worker* runs serially on
//! that worker, capping total threads at the configured job count.
//!
//! The process-wide default worker count is set once at startup from
//! `--jobs N` (see [`set_jobs`]); `0`/unset means "available
//! parallelism". Tests that compare worker counts construct explicit
//! [`Pool`]s instead of touching the global.

use crate::steal::{seed_queues, ChunkQueue};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Process-wide default job count; 0 = auto (available parallelism).
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Trials executed since process start (throughput instrumentation).
static TRIALS_RUN: AtomicU64 = AtomicU64::new(0);

std::thread_local! {
    /// True while the current thread is a pool worker: nested
    /// `map_indexed` calls run serially instead of spawning again.
    static IN_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Set the process-wide default worker count (the CLI's `--jobs N`).
/// `0` restores "available parallelism".
pub fn set_jobs(jobs: usize) {
    DEFAULT_JOBS.store(jobs, Ordering::Relaxed);
}

/// The effective default worker count.
pub fn jobs() -> usize {
    match DEFAULT_JOBS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        n => n,
    }
}

/// Record `n` executed trials (throughput instrumentation). Called by
/// every trial-running loop, serial or parallel.
pub fn record_trials(n: u64) {
    TRIALS_RUN.fetch_add(n, Ordering::Relaxed);
}

/// Trials executed since process start.
pub fn trials_run() -> u64 {
    TRIALS_RUN.load(Ordering::Relaxed)
}

/// A deterministic fan-out executor with a fixed worker count.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    workers: usize,
    /// Explicit chunk size (`None` = sized from `n` and `workers`).
    chunk: Option<usize>,
}

impl Pool {
    /// A pool with exactly `workers` workers (clamped to ≥ 1).
    pub fn with_jobs(workers: usize) -> Pool {
        Pool {
            workers: workers.max(1),
            chunk: None,
        }
    }

    /// The process-default pool (`--jobs N`, else available
    /// parallelism).
    pub fn global() -> Pool {
        Pool::with_jobs(jobs())
    }

    /// Pin the work-stealing chunk size (clamped to ≥ 1). Results are
    /// bit-identical for any value — the knob exists for the
    /// adversarial-chunking proptests and for benchmarks.
    pub fn with_chunk(mut self, chunk: usize) -> Pool {
        self.chunk = Some(chunk.max(1));
        self
    }

    /// This pool's worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The chunk size used for a batch of `n` tasks over `workers`
    /// workers: explicit override, else ~8 chunks per worker capped at
    /// 64 tasks — small enough that a straggler's backlog is worth
    /// stealing, large enough that queue traffic stays negligible.
    fn chunk_for(&self, n: usize, workers: usize) -> usize {
        self.chunk
            .unwrap_or_else(|| (n / (workers * 8)).clamp(1, 64))
    }

    /// Run `f(0..n)` across the pool and return results in index
    /// order. The output is bit-identical for any worker count because
    /// `f` must be a pure function of its index — the pool only
    /// changes *where* each index runs, never *what* it computes.
    pub fn map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.map_indexed_scratch(n, || (), |(), i| f(i))
    }

    /// [`Pool::map_indexed`] with a per-worker scratch arena:
    /// `make_scratch` runs **once per worker** (once total on the
    /// serial path) and the resulting state is threaded through every
    /// task that worker runs, so buffers warmed by one trial are
    /// reused by the next instead of being re-created `n` times.
    ///
    /// Determinism contract: `f(scratch, i)` must return the same
    /// value for a fresh scratch and a reused one — scratch holds
    /// *capacity* (buffers, arenas), never *state* that leaks between
    /// tasks. Under that contract the output is bit-identical for any
    /// worker count, chunk size, and steal interleaving.
    pub fn map_indexed_scratch<T, S, F, G>(&self, n: usize, make_scratch: G, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut S, usize) -> T + Sync,
        G: Fn() -> S + Sync,
    {
        let serial = self.workers == 1 || n <= 1 || IN_POOL_WORKER.with(std::cell::Cell::get);
        if serial {
            let mut scratch = make_scratch();
            return (0..n).map(|i| f(&mut scratch, i)).collect();
        }

        // Chunk-granular work stealing (see `crate::steal`): each
        // worker owns a contiguous block of `0..n` pre-split into
        // chunks, pops locally, and steals half a victim's backlog
        // when its own queue drains — stragglers no longer gate the
        // batch, and the steady state touches no shared counter.
        let workers = self.workers.min(n);
        let chunk = self.chunk_for(n, workers);
        let queues: Vec<ChunkQueue> = seed_queues(n, workers, chunk);
        let mut buckets: Vec<Vec<(usize, Vec<T>)>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let queues = &queues;
                    let f = &f;
                    let make_scratch = &make_scratch;
                    scope.spawn(move || {
                        IN_POOL_WORKER.with(|flag| flag.set(true));
                        let mut scratch = make_scratch();
                        let mut local = Vec::new();
                        loop {
                            // Local queue first; on empty, scan victims
                            // in deterministic ring order and take half
                            // their backlog. No chunk is ever re-queued
                            // after it starts, so "all queues empty" is
                            // a sound exit.
                            let next = queues[w].pop().or_else(|| {
                                (1..workers)
                                    .find_map(|v| queues[(w + v) % workers].steal_half(&queues[w]))
                            });
                            let Some((start, end)) = next else { break };
                            let mut run = Vec::with_capacity(end - start);
                            run.extend((start..end).map(|i| f(&mut scratch, i)));
                            local.push((start, run));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                buckets.push(handle.join().expect("pool worker panicked"));
            }
        });

        // Scatter back into index order — the step that makes the
        // reduction independent of scheduling. Runs are disjoint and
        // cover `0..n`, so sorting by start index and concatenating
        // reproduces the serial order.
        let mut runs: Vec<(usize, Vec<T>)> = buckets.into_iter().flatten().collect();
        runs.sort_unstable_by_key(|(start, _)| *start);
        let mut out = Vec::with_capacity(n);
        for (_, run) in runs {
            out.extend(run);
        }
        debug_assert_eq!(out.len(), n);
        out
    }
}

/// Wall-clock + trial-count instrumentation for one run, emitted as
/// JSON so `BENCH_*.json` trajectories can track throughput across
/// PRs.
#[derive(Debug, Clone)]
pub struct Throughput {
    /// What ran (experiment or subcommand name).
    pub label: String,
    /// Trials executed during the measured run.
    pub trials: u64,
    /// Wall time in milliseconds.
    pub wall_ms: f64,
    /// Trials per wall-clock second.
    pub trials_per_sec: f64,
    /// Worker count in effect.
    pub workers: usize,
}

impl Throughput {
    /// Measure `f`, counting the trials it records via
    /// [`record_trials`].
    pub fn measure<T>(label: &str, f: impl FnOnce() -> T) -> (T, Throughput) {
        let trials_before = trials_run();
        let start = Instant::now();
        let value = f();
        let wall = start.elapsed();
        let trials = trials_run() - trials_before;
        let wall_ms = wall.as_secs_f64() * 1e3;
        (
            value,
            Throughput {
                label: label.to_string(),
                trials,
                wall_ms,
                trials_per_sec: if wall.as_secs_f64() > 0.0 {
                    trials as f64 / wall.as_secs_f64()
                } else {
                    0.0
                },
                workers: jobs(),
            },
        )
    }

    /// Render as one JSON object (hand-rolled; the workspace is
    /// offline and carries no serde).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"label\":\"{}\",\"trials\":{},\"wall_ms\":{:.1},\"trials_per_sec\":{:.1},\"workers\":{}}}",
            self.label.replace('"', "'"),
            self.trials,
            self.wall_ms,
            self.trials_per_sec,
            self.workers
        )
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for workers in [1, 2, 3, 8] {
            let pool = Pool::with_jobs(workers);
            let out = pool.map_indexed(100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let serial = Pool::with_jobs(1).map_indexed(257, f);
        for workers in [2, 4, 8] {
            assert_eq!(Pool::with_jobs(workers).map_indexed(257, f), serial);
        }
    }

    #[test]
    fn nested_map_runs_serially_not_exponentially() {
        let pool = Pool::with_jobs(4);
        let out = pool.map_indexed(8, |i| {
            // Inner call from a worker thread: must not spawn again.
            let inner = Pool::with_jobs(4).map_indexed(8, |j| i * 8 + j);
            inner.iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..8).map(|i| (0..8).map(|j| i * 8 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn empty_and_single_item_maps() {
        let pool = Pool::with_jobs(8);
        assert_eq!(pool.map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.map_indexed(1, |i| i + 41), vec![41]);
    }

    #[test]
    fn throughput_counts_recorded_trials() {
        let (sum, t) = Throughput::measure("unit", || {
            record_trials(17);
            21 + 21
        });
        assert_eq!(sum, 42);
        assert_eq!(t.trials, 17);
        assert!(t.workers >= 1);
        let json = t.to_json();
        assert!(json.contains("\"label\":\"unit\""), "{json}");
        assert!(json.contains("\"trials\":17"), "{json}");
        assert!(json.contains("\"workers\":"), "{json}");
    }
}
