//! Figure-1/2-style packet waterfalls rendered from traces.
//!
//! The paper's waterfall diagrams show, per strategy, what actually
//! crosses the wire between the unmodified client and the strategic
//! server. We render the same picture in text from a [`netsim::Trace`]:
//! client transmissions on the left, server transmissions on the
//! right, censor injections flagged in the middle.

use netsim::{Side, Trace, TraceEvent};
use packet::Packet;

const WIDTH: usize = 66;

/// Annotate a packet the way the paper's figures do.
fn label(pkt: &Packet) -> String {
    let Some(tcp) = pkt.tcp_header() else {
        return "UDP".to_string();
    };
    let mut s = tcp.flags.to_string();
    if !pkt.payload.is_empty() {
        if looks_like_get(&pkt.payload) {
            s.push_str(" (GET load)");
        } else {
            s.push_str(&format!(" (w/ load {}B)", pkt.payload.len()));
        }
    }
    if tcp.flags.is_syn_ack() && tcp.ack == 0xBAD0_0000 {
        s.push_str(" (bad ackno)");
    }
    if !pkt.checksums_ok() {
        s.push_str(" (bad chksum)");
    }
    if pkt.ip.ttl < 32 {
        s.push_str(&format!(" (ttl {})", pkt.ip.ttl));
    }
    s
}

fn looks_like_get(payload: &[u8]) -> bool {
    payload.starts_with(b"GET ")
}

/// Render a trace as a two-column waterfall.
pub fn render_waterfall(title: &str, trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<10}{:<28}{:>28}\n",
        "t(ms)", "Client", "Server"
    ));
    out.push_str(&format!("{}\n", "-".repeat(WIDTH)));
    for event in &trace.events {
        match event {
            TraceEvent::Sent { t, side, pkt } => {
                let time = format!("{:<10.3}", *t as f64 / 1000.0);
                let text = label(pkt);
                match side {
                    Side::Client => {
                        out.push_str(&format!("{time}{:<28}{:>28}\n", format!("{text} ──▶"), ""))
                    }
                    Side::Server => {
                        out.push_str(&format!("{time}{:<28}{:>28}\n", "", format!("◀── {text}")))
                    }
                }
            }
            TraceEvent::Injected { t, toward, pkt } => {
                let time = format!("{:<10.3}", *t as f64 / 1000.0);
                let arrow = match toward {
                    Side::Client => "censor ✗──▶ client",
                    Side::Server => "censor ✗──▶ server",
                };
                out.push_str(&format!("{time}    [{arrow}: {}]\n", label(pkt)));
            }
            TraceEvent::DroppedByMiddlebox { t, pkt, .. } => {
                let time = format!("{:<10.3}", *t as f64 / 1000.0);
                out.push_str(&format!("{time}    [censor swallowed: {}]\n", label(pkt)));
            }
            TraceEvent::TtlExpired { t, pkt, .. } => {
                let time = format!("{:<10.3}", *t as f64 / 1000.0);
                out.push_str(&format!(
                    "{time}    [ttl expired in transit: {}]\n",
                    label(pkt)
                ));
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;
    use netsim::Trace;
    use packet::TcpFlags;

    fn pkt(flags: TcpFlags, payload: &[u8]) -> Packet {
        let mut p = Packet::tcp([1; 4], 1, [2; 4], 2, flags, 10, 20, payload.to_vec());
        p.finalize();
        p
    }

    #[test]
    fn renders_both_directions_and_injections() {
        let mut trace = Trace::default();
        trace.push(TraceEvent::Sent {
            t: 0,
            side: Side::Client,
            pkt: pkt(TcpFlags::SYN, b""),
        });
        trace.push(TraceEvent::Sent {
            t: 50_000,
            side: Side::Server,
            pkt: pkt(TcpFlags::SYN_ACK, b"\xAA\xBB"),
        });
        trace.push(TraceEvent::Injected {
            t: 60_000,
            toward: Side::Client,
            pkt: pkt(TcpFlags::RST, b""),
        });
        let text = render_waterfall("Strategy X", &trace);
        assert!(text.contains("SYN ──▶"), "{text}");
        assert!(text.contains("◀── SYN/ACK (w/ load 2B)"), "{text}");
        assert!(text.contains("censor ✗──▶ client: RST"), "{text}");
    }

    #[test]
    fn annotations_cover_checksum_and_ttl() {
        let mut bad = pkt(TcpFlags::RST, b"");
        bad.tcp_header_mut().unwrap().checksum ^= 0xFFFF;
        assert!(label(&bad).contains("bad chksum"));
        let mut low = pkt(TcpFlags::RST, b"");
        low.ip.ttl = 9;
        low.finalize();
        assert!(label(&low).contains("ttl 9"));
        assert!(label(&pkt(TcpFlags::PSH_ACK, b"GET / HTTP1.")).contains("GET load"));
    }
}
