//! Centralized per-trial seed derivation.
//!
//! Every experiment used to roll its own seed scheme — XOR of small
//! salts (`base ^ 0x55`), linear strides (`base + i * 7919`), shifted
//! ids (`base ^ (id << 32)`). Those schemes are *correlated*: nearby
//! cells get seed sequences that are translates or low-bit-XOR twins
//! of each other, so "independent" cells can share the stochastic
//! coin flips inside the censor models. Every trial consumer now funnels
//! through [`derive_trial_seed`], a splitmix64-style finalizing mixer:
//! flipping any bit of the base seed, the cell tag, or the trial index
//! avalanches through the whole output word.
//!
//! The derivation is pure, so the parallel pool computes trial `i`'s
//! seed independently on any worker — seed sequences never depend on
//! execution order or worker count.

/// The splitmix64 finalizer (Steele, Lea & Flood; also xorshift's
/// recommended seeder). Bijective on `u64`, full avalanche.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Derive the seed for trial `index` of the experiment cell `cell_tag`
/// under master seed `base`.
///
/// Three chained splitmix64 rounds — one per input — so distinct
/// (base, tag, index) triples map to decorrelated seeds even when the
/// inputs differ in a single bit.
#[must_use]
pub fn derive_trial_seed(base: u64, cell_tag: u64, index: u32) -> u64 {
    let mut s = splitmix64(base);
    s = splitmix64(s ^ cell_tag);
    splitmix64(s ^ u64::from(index))
}

/// Hash a textual cell label (strategy DSL, experiment name, …) into a
/// tag for [`derive_trial_seed`]. FNV-1a: deterministic across runs
/// and platforms, unlike `std`'s `DefaultHasher`.
#[must_use]
pub fn cell_tag(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn derivation_is_pure_and_deterministic() {
        assert_eq!(derive_trial_seed(7, 1, 3), derive_trial_seed(7, 1, 3));
        assert_ne!(derive_trial_seed(7, 1, 3), derive_trial_seed(7, 1, 4));
        assert_ne!(derive_trial_seed(7, 1, 3), derive_trial_seed(7, 2, 3));
        assert_ne!(derive_trial_seed(7, 1, 3), derive_trial_seed(8, 1, 3));
    }

    #[test]
    fn nearby_cells_are_decorrelated() {
        // The old schemes made cell A's sequence a translate of cell
        // B's: seed_a(i) - seed_b(i) constant, or seed_a(i) ^ seed_b(i)
        // constant. The mixer must produce neither.
        let a: Vec<u64> = (0..64).map(|i| derive_trial_seed(1, 0x51, i)).collect();
        let b: Vec<u64> = (0..64).map(|i| derive_trial_seed(1, 0x52, i)).collect();
        let diffs: HashSet<u64> = a.iter().zip(&b).map(|(x, y)| x.wrapping_sub(*y)).collect();
        let xors: HashSet<u64> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        assert!(diffs.len() > 60, "additive correlation: {}", diffs.len());
        assert!(xors.len() > 60, "xor correlation: {}", xors.len());
    }

    #[test]
    fn no_collisions_across_a_realistic_grid() {
        // 45 cells × 300 trials (Table 2 scale) must not collide.
        let mut seen = HashSet::new();
        for cell in 0..45u64 {
            for i in 0..300u32 {
                assert!(
                    seen.insert(derive_trial_seed(0xBADC_0FFE, cell, i)),
                    "collision at cell {cell} trial {i}"
                );
            }
        }
    }

    #[test]
    fn cell_tag_is_stable_and_discriminating() {
        assert_eq!(cell_tag("table2"), cell_tag("table2"));
        assert_ne!(cell_tag("table2"), cell_tag("table3"));
        assert_ne!(cell_tag(""), cell_tag(" "));
    }
}
