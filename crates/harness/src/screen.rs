//! Lint-before-trial gate: run `strata` over a strategy before
//! spending simulator time on it.
//!
//! The screener does three things per [`TrialConfig`]:
//!
//! 1. builds the [`LintContext`] the trial actually implies — path
//!    hop counts from the config's [`netsim::PathConfig`] and RST
//!    resync behavior from the censor variant (the revised §5 GFW
//!    model ignores server RSTs; the old Wang-et-al. model tears the
//!    TCB down);
//! 2. runs the full [`strata::analyze_with_context`] pipeline and
//!    keeps counters (screened / statically rejected / simulated);
//! 3. only forwards to [`run_trial`] when the lints could not prove
//!    the strategy futile.
//!
//! A statically rejected trial reports `evaded = false` without
//! touching the simulator — exactly the outcome simulation would
//! have produced, by the soundness of the `handshake-severed` lint.

use crate::trial::{run_trial, CensorVariant, TrialConfig, TrialResult};
use censor::Country;
use strata::censor_model::{check, CensorId, Verdict};
use strata::{analyze_with_context, summarize, Analysis, LintContext};

/// One screened trial: the static verdicts, plus the simulation result
/// when the gate let it through.
#[derive(Debug, Clone)]
pub struct ScreenedTrial {
    /// Full static analysis of the strategy.
    pub analysis: Analysis,
    /// The censor-product model checker's verdict against the trial's
    /// censor. `None` when the trial has no known censor or the censor
    /// does not censor the trial's protocol (inertness proves nothing
    /// there — every flow sails through).
    pub static_verdict: Option<Verdict>,
    /// `None` when the gate rejected the trial statically.
    pub result: Option<TrialResult>,
}

impl ScreenedTrial {
    /// Did the connection evade censorship? Statically rejected
    /// trials cannot have.
    pub fn evaded(&self) -> bool {
        self.result.as_ref().is_some_and(TrialResult::evaded)
    }
}

/// The censor automaton a trial's country maps onto.
pub fn censor_for(country: Country) -> CensorId {
    match country {
        Country::China => CensorId::Gfw,
        Country::India => CensorId::Airtel,
        Country::Iran => CensorId::Iran,
        Country::Kazakhstan => CensorId::Kazakhstan,
    }
}

/// The lint context a trial's configuration implies. The censor-fact
/// knobs come from the censor automaton (via [`LintContext::censor`])
/// rather than a per-country table here; the one exception is the old
/// Wang-et-al. GFW variant, which *does* tear the TCB down on server
/// RSTs and overrides the automaton's fact explicitly.
pub fn context_for(cfg: &TrialConfig) -> LintContext {
    let censor_resyncs_on_rst = match cfg.censor_variant {
        CensorVariant::GfwOldResyncModel => Some(true),
        _ => None,
    };
    LintContext {
        hops_to_middlebox: cfg.path.mb_to_server_hops,
        hops_to_client: cfg.path.mb_to_server_hops + cfg.path.client_to_mb_hops,
        censor_resyncs_on_rst,
        censor: cfg.country.map(censor_for),
        tcp_exchange: cfg.protocol.transport_is_tcp(),
        ..LintContext::default()
    }
}

/// Counting gate around [`run_trial`].
#[derive(Debug, Default, Clone)]
pub struct Screener {
    /// Trials offered to the gate.
    pub screened: u64,
    /// Trials rejected without simulation.
    pub rejected: u64,
    /// Trials that went on to simulate.
    pub simulated: u64,
}

impl Screener {
    /// Fresh gate with zeroed counters.
    pub fn new() -> Screener {
        Screener::default()
    }

    /// Analyze, then simulate only if the strategy survives.
    pub fn run(&mut self, cfg: &TrialConfig) -> ScreenedTrial {
        self.screened += 1;
        let analysis = analyze_with_context(&cfg.strategy, &context_for(cfg));
        let static_verdict = cfg
            .country
            .filter(|c| c.censored_protocols().contains(&cfg.protocol))
            .map(|c| check(&summarize(&cfg.strategy), censor_for(c)));
        if analysis.statically_futile {
            self.rejected += 1;
            return ScreenedTrial {
                analysis,
                static_verdict,
                result: None,
            };
        }
        self.simulated += 1;
        ScreenedTrial {
            analysis,
            static_verdict,
            result: Some(run_trial(cfg)),
        }
    }

    /// Fraction of screened trials rejected without simulation.
    pub fn reject_rate(&self) -> f64 {
        if self.screened == 0 {
            0.0
        } else {
            self.rejected as f64 / self.screened as f64
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;
    use appproto::AppProtocol;
    use geneva::parse_strategy;

    fn cfg(strategy: &str) -> TrialConfig {
        TrialConfig::new(
            Country::China,
            AppProtocol::Http,
            parse_strategy(strategy).expect("parses"),
            7,
        )
    }

    #[test]
    fn futile_strategy_is_rejected_without_simulation() {
        let mut gate = Screener::new();
        let trial = gate.run(&cfg("[TCP:flags:SA]-drop-| \\/ "));
        assert!(trial.analysis.statically_futile);
        assert!(trial.result.is_none());
        assert!(!trial.evaded());
        assert_eq!((gate.screened, gate.rejected, gate.simulated), (1, 1, 0));
        assert!((gate.reject_rate() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn live_strategy_passes_through_to_the_simulator() {
        let mut gate = Screener::new();
        let trial = gate.run(&cfg(
            "[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},)-| \\/ ",
        ));
        assert!(!trial.analysis.statically_futile);
        assert!(trial.result.is_some());
        assert_eq!((gate.screened, gate.rejected, gate.simulated), (1, 0, 1));
    }

    #[test]
    fn context_reflects_censor_variant() {
        let mut c = cfg(" \\/ ");
        // The standard model passes no explicit fact: the Gfw
        // automaton's `resyncs_on_server_rst: Some(false)` answers.
        let ctx = context_for(&c);
        assert_eq!(ctx.censor, Some(CensorId::Gfw));
        assert_eq!(ctx.censor_resyncs_on_rst, None);
        // The old Wang-et-al. variant really does resync: explicit
        // override on top of the automaton.
        c.censor_variant = CensorVariant::GfwOldResyncModel;
        assert_eq!(context_for(&c).censor_resyncs_on_rst, Some(true));
        c.censor_variant = CensorVariant::Standard;
        c.country = None;
        let ctx = context_for(&c);
        assert_eq!(ctx.censor, None);
        assert_eq!(ctx.censor_resyncs_on_rst, None);
        assert_eq!(ctx.hops_to_middlebox, c.path.mb_to_server_hops);
    }

    #[test]
    fn screened_trials_carry_the_static_verdict() {
        // Strategy 11's null flags vs Kazakhstan: provably desynced,
        // and the simulated trial agrees by evading.
        let mut c = cfg("[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:},)-| \\/ ");
        c.country = Some(Country::Kazakhstan);
        let mut gate = Screener::new();
        let trial = gate.run(&c);
        assert_eq!(trial.static_verdict, Some(Verdict::ProvablyDesynced));
        assert!(trial.evaded());

        // Identity vs Kazakhstan: provably inert, trial censored.
        let mut c = cfg(" \\/ ");
        c.country = Some(Country::Kazakhstan);
        let trial = gate.run(&c);
        assert_eq!(trial.static_verdict, Some(Verdict::ProvablyInert));
        assert!(!trial.evaded());

        // The stochastic GFW never gets a claim; no censor, no verdict.
        let trial = gate.run(&cfg(" \\/ "));
        assert_eq!(trial.static_verdict, Some(Verdict::Unknown));
        let mut c = cfg(" \\/ ");
        c.country = None;
        assert_eq!(gate.run(&c).static_verdict, None);
    }

    #[test]
    fn rejection_agrees_with_simulation() {
        // The gate's soundness claim, checked dynamically: a rejected
        // strategy really does fail every simulated trial.
        let futile = cfg("[TCP:flags:SA]-tamper{TCP:chksum:corrupt}-| \\/ ");
        let mut gate = Screener::new();
        assert!(gate.run(&futile).analysis.statically_futile);
        for seed in 0..10 {
            let mut c = futile.clone();
            c.seed = seed;
            assert!(
                !run_trial(&c).evaded(),
                "seed {seed} evaded despite futility proof"
            );
        }
    }
}
