//! Table 1: client locations and protocols used in the experiments.
//!
//! Static configuration, reproduced verbatim so every table of the
//! paper has a regenerator.

use appproto::AppProtocol;
use censor::Country;

/// Vantage points per country (paper Table 1).
pub fn vantage_points(country: Country) -> &'static [&'static str] {
    match country {
        Country::China => &["Beijing", "Shanghai", "Shenzen", "Zhengzhou"],
        Country::India => &["Bangalore"],
        Country::Iran => &["Tehran", "Zanjan"],
        Country::Kazakhstan => &["Qaraghandy", "Almaty"],
    }
}

/// Render Table 1.
pub fn table1() -> String {
    let mut out = String::new();
    out.push_str("Table 1: Client locations and protocols used in our experiments.\n");
    out.push_str(&format!(
        "{:<12} {:<34} {}\n",
        "Country", "Vantage Points", "Protocols"
    ));
    out.push_str(&format!("{}\n", "-".repeat(78)));
    for country in Country::all() {
        let protocols: Vec<&str> = country
            .censored_protocols()
            .iter()
            .map(|p| p.name())
            .collect();
        out.push_str(&format!(
            "{:<12} {:<34} {}\n",
            country.name(),
            vantage_points(country).join(", "),
            protocols.join(", ")
        ));
    }
    out
}

/// Protocols exercised in our experiments, per country — a typed view
/// the other experiments iterate over.
pub fn protocol_matrix() -> Vec<(Country, Vec<AppProtocol>)> {
    Country::all()
        .iter()
        .map(|c| (*c, c.censored_protocols().to_vec()))
        .collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    #[test]
    fn table_lists_all_countries_and_protocols() {
        let t = table1();
        for country in Country::all() {
            assert!(t.contains(country.name()), "{t}");
        }
        assert!(t.contains("DNS, FTP, HTTP, HTTPS, SMTP"));
        assert!(t.contains("Bangalore"));
    }

    #[test]
    fn matrix_matches_paper() {
        let m = protocol_matrix();
        assert_eq!(m.len(), 4);
        assert_eq!(m[0].1.len(), 5, "China censors all five");
        assert_eq!(m[1].1, vec![AppProtocol::Http], "India: HTTP only");
    }
}
