//! §8: deployment overhead.
//!
//! "Our strategies incur little computation or communication overhead
//! (at most three extra payloads), so we expect that they could be
//! deployed even in performance-critical settings." This experiment
//! measures exactly that: the extra packets and bytes each strategy
//! makes the server emit, compared with the identical exchange without
//! a strategy.

use crate::trial::{run_trial, TrialConfig};
use appproto::AppProtocol;
use censor::Country;
use geneva::{library, Strategy};
use netsim::{Side, TraceEvent};

/// Per-strategy overhead measurements.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Strategy number.
    pub strategy_id: u32,
    /// Extra packets the server emitted (vs. no strategy).
    pub extra_packets: i64,
    /// Extra bytes on the wire from the server.
    pub extra_bytes: i64,
    /// Extra payload-bearing packets ("payloads" in the §8 claim).
    pub extra_payloads: i64,
}

/// The §8 report.
#[derive(Debug, Clone)]
pub struct OverheadReport {
    /// One row per server-side strategy.
    pub rows: Vec<OverheadRow>,
}

fn server_emissions(strategy: Strategy, seed: u64) -> (i64, i64, i64) {
    let cfg = TrialConfig::new(Country::China, AppProtocol::Http, strategy, seed);
    let result = run_trial(&cfg);
    let mut packets = 0i64;
    let mut bytes = 0i64;
    let mut payloads = 0i64;
    for event in &result.trace.events {
        if let TraceEvent::Sent {
            side: Side::Server,
            pkt,
            ..
        } = event
        {
            packets += 1;
            bytes += pkt.serialize_raw().len() as i64;
            if !pkt.payload.is_empty()
                && pkt
                    .tcp_header()
                    .map(|t| t.flags.is_syn_ack() || t.flags.is_syn())
                    .unwrap_or(false)
            {
                payloads += 1;
            }
        }
    }
    (packets, bytes, payloads)
}

/// Measure every strategy's handshake overhead (averaged over a few
/// seeds so retransmission noise washes out).
pub fn overhead(seeds: u64) -> OverheadReport {
    let avg = |strategy: &Strategy| -> (i64, i64, i64) {
        let mut total = (0i64, 0i64, 0i64);
        for seed in 0..seeds {
            let (p, b, l) = server_emissions(strategy.clone(), seed * 31 + 5);
            total.0 += p;
            total.1 += b;
            total.2 += l;
        }
        (
            total.0 / seeds as i64,
            total.1 / seeds as i64,
            total.2 / seeds as i64,
        )
    };
    let baseline = avg(&Strategy::identity());
    let mut rows = Vec::new();
    for named in library::server_side() {
        let measured = avg(&named.strategy());
        rows.push(OverheadRow {
            strategy_id: named.id,
            extra_packets: measured.0 - baseline.0,
            extra_bytes: measured.1 - baseline.1,
            extra_payloads: measured.2 - baseline.2,
        });
    }
    OverheadReport { rows }
}

impl OverheadReport {
    /// The §8 claim: at most three extra payloads.
    pub fn max_extra_payloads(&self) -> i64 {
        self.rows
            .iter()
            .map(|r| r.extra_payloads)
            .max()
            .unwrap_or(0)
    }

    /// Render as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("§8 deployment overhead (server emissions vs no strategy, HTTP/China)\n");
        out.push_str(&format!(
            "{:<10}{:>14}{:>12}{:>16}\n",
            "strategy", "extra pkts", "extra B", "extra payloads"
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<10}{:>14}{:>12}{:>16}\n",
                row.strategy_id, row.extra_packets, row.extra_bytes, row.extra_payloads
            ));
        }
        out.push_str(&format!(
            "max extra payloads: {} (paper §8: \"at most three\")\n",
            self.max_extra_payloads()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    #[test]
    fn at_most_three_extra_payloads_and_small_byte_cost() {
        let report = overhead(6);
        assert!(report.max_extra_payloads() <= 3, "{}", report.render());
        for row in &report.rows {
            // Handshake-only manipulation: a handful of extra packets,
            // never a flood.
            assert!(
                (0..=4).contains(&row.extra_packets),
                "S{}: {} extra packets\n{}",
                row.strategy_id,
                row.extra_packets,
                report.render()
            );
            assert!(
                row.extra_bytes < 600,
                "S{}: {} extra bytes",
                row.strategy_id,
                row.extra_bytes
            );
        }
        // Strategy 9 is the known worst case: three payload copies.
        let s9 = report.rows.iter().find(|r| r.strategy_id == 9).unwrap();
        assert_eq!(s9.extra_payloads, 3, "{}", report.render());
    }
}
