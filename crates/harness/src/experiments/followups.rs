//! §5 follow-up experiments: the instrumented-client confirmations the
//! paper used to *explain* why each strategy works.

use crate::pool::{self, Pool};
use crate::rates::{success_rate_tagged, RateEstimate};
use crate::seed::{cell_tag, derive_trial_seed};
use crate::trial::{run_trial, TrialConfig};
use appproto::AppProtocol;
use censor::Country;
use geneva::{library, parse_strategy};

/// All follow-up measurements.
#[derive(Debug, Clone)]
pub struct FollowupReport {
    /// Fraction of Strategy-1 trials in which a *seq−1* instrumented
    /// request drew censorship — the paper's confirmation that the GFW
    /// resynced exactly one byte low (expected ≈ the resync-entry
    /// probability, ~50 %).
    pub seq_minus_one_with_strategy: RateEstimate,
    /// Control: seq−1 without any server strategy never draws
    /// censorship (the request no longer matches the true stream).
    pub seq_minus_one_without_strategy: RateEstimate,
    /// Strategy 5 (FTP) with the client's induced RST suppressed —
    /// collapses, because the RST is the resync landing target.
    pub s5_drop_rst: RateEstimate,
    /// Strategy 5 (FTP) baseline for comparison.
    pub s5_normal: RateEstimate,
    /// Strategy 6 (HTTP) with the induced RST suppressed — unchanged,
    /// because the landing target is the corrupted SYN+ACK itself.
    pub s6_drop_rst: RateEstimate,
    /// Strategy 6 (HTTP) baseline.
    pub s6_normal: RateEstimate,
    /// Kazakhstan Strategy-9 controls: success per number of
    /// payload-bearing SYN+ACK copies (1, 2, 3, 4).
    pub s9_load_counts: Vec<(u32, RateEstimate)>,
    /// Kazakhstan Strategy-9 control: 3 copies but only the last
    /// carries a payload — fails.
    pub s9_one_of_three_loads: RateEstimate,
    /// Kazakhstan Strategy-9: a 1-byte payload is as good as a big one.
    pub s9_one_byte_load: RateEstimate,
    /// Kazakhstan Strategy-10 controls: (variant, rate).
    pub s10_variants: Vec<(String, RateEstimate)>,
}

/// Run every follow-up with `trials` per measurement.
pub fn followups(trials: u32, base_seed: u64) -> FollowupReport {
    // --- seq−1 confirmation (Strategy 1, China HTTP) ---
    // The measurement here is "was the request CENSORED", so we count
    // trials whose trace shows censor injections. Trials fan out on
    // the pool exactly like `success_rate` does.
    let censored_fraction = |cfg: &TrialConfig, label: &str| {
        let tag = cell_tag(&format!("followups/{label}"));
        let outcomes = Pool::global().map_indexed(trials as usize, |i| {
            let mut c = cfg.clone();
            #[allow(clippy::cast_possible_truncation)] // i < trials: u32
            let index = i as u32;
            c.seed = derive_trial_seed(base_seed, tag, index);
            run_trial(&c).trace.middlebox_injected_any()
        });
        pool::record_trials(u64::from(trials));
        let mut estimate = RateEstimate::of(0, trials);
        for censored in outcomes {
            if censored {
                estimate.successes += 1;
            }
        }
        estimate
    };
    let rate = |cfg: &TrialConfig, label: &str| {
        success_rate_tagged(
            cfg,
            trials,
            base_seed,
            cell_tag(&format!("followups/{label}")),
        )
    };
    let mut cfg = TrialConfig::new(
        Country::China,
        AppProtocol::Http,
        library::STRATEGY_1.strategy(),
        0,
    );
    cfg.client_seq_adjust = -1;
    let seq_minus_one_with_strategy = censored_fraction(&cfg, "seq-1/strategy1");
    let mut cfg_control = cfg.clone();
    cfg_control.strategy = geneva::Strategy::identity().into();
    let seq_minus_one_without_strategy = censored_fraction(&cfg_control, "seq-1/identity");

    // --- induced-RST ablation: Strategy 5 (FTP) vs Strategy 6 (HTTP) ---
    let s5 = TrialConfig::new(
        Country::China,
        AppProtocol::Ftp,
        library::STRATEGY_5.strategy(),
        0,
    );
    let s5_normal = rate(&s5, "s5/normal");
    let mut s5_drop = s5.clone();
    s5_drop.client_drop_own_rst = true;
    let s5_drop_rst = rate(&s5_drop, "s5/drop-rst");

    let s6 = TrialConfig::new(
        Country::China,
        AppProtocol::Http,
        library::STRATEGY_6.strategy(),
        0,
    );
    let s6_normal = rate(&s6, "s6/normal");
    let mut s6_drop = s6.clone();
    s6_drop.client_drop_own_rst = true;
    let s6_drop_rst = rate(&s6_drop, "s6/drop-rst");

    // --- Strategy 9 load-count controls (Kazakhstan) ---
    let load_variant = |copies: u32| {
        let text = match copies {
            1 => "[TCP:flags:SA]-tamper{TCP:load:corrupt}-| \\/ ".to_string(),
            2 => "[TCP:flags:SA]-tamper{TCP:load:corrupt}(duplicate,)-| \\/ ".to_string(),
            3 => library::STRATEGY_9.text.to_string(),
            4 => "[TCP:flags:SA]-tamper{TCP:load:corrupt}(duplicate(duplicate,duplicate),)-| \\/ "
                .to_string(),
            _ => unreachable!(),
        };
        parse_strategy(&text).expect("variant parses")
    };
    let mut s9_load_counts = Vec::new();
    for copies in 1..=4 {
        let cfg = TrialConfig::new(
            Country::Kazakhstan,
            AppProtocol::Http,
            load_variant(copies),
            0,
        );
        s9_load_counts.push((copies, rate(&cfg, &format!("s9/loads-{copies}"))));
    }
    // Three copies, only the LAST with a payload.
    let one_of_three =
        parse_strategy("[TCP:flags:SA]-duplicate(duplicate,tamper{TCP:load:corrupt})-| \\/ ")
            .expect("parses");
    let cfg = TrialConfig::new(Country::Kazakhstan, AppProtocol::Http, one_of_three, 0);
    let s9_one_of_three_loads = rate(&cfg, "s9/one-of-three");
    // A 1-byte payload on all three.
    let tiny =
        parse_strategy("[TCP:flags:SA]-tamper{TCP:load:replace:x}(duplicate(duplicate,),)-| \\/ ")
            .expect("parses");
    let cfg = TrialConfig::new(Country::Kazakhstan, AppProtocol::Http, tiny, 0);
    let s9_one_byte_load = rate(&cfg, "s9/one-byte");

    // --- Strategy 10 well-formedness controls (Kazakhstan) ---
    let mut s10_variants = Vec::new();
    for (label, text) in [
        (
            "double GET 'GET / HTTP1.' (paper minimum)",
            library::STRATEGY_10.text.to_string(),
        ),
        (
            "double GET, longer path",
            "[TCP:flags:SA]-tamper{TCP:load:replace:GET /index.html HTTP1.}(duplicate,)-| \\/ "
                .to_string(),
        ),
        (
            "double GET, truncated before the dot",
            "[TCP:flags:SA]-tamper{TCP:load:replace:GET / HTTP1}(duplicate,)-| \\/ ".to_string(),
        ),
        (
            "single GET",
            "[TCP:flags:SA]-tamper{TCP:load:replace:GET / HTTP1.}-| \\/ ".to_string(),
        ),
    ] {
        let strategy = parse_strategy(&text).expect("variant parses");
        let cfg = TrialConfig::new(Country::Kazakhstan, AppProtocol::Http, strategy, 0);
        s10_variants.push((label.to_string(), rate(&cfg, &format!("s10/{label}"))));
    }

    FollowupReport {
        seq_minus_one_with_strategy,
        seq_minus_one_without_strategy,
        s5_drop_rst,
        s5_normal,
        s6_drop_rst,
        s6_normal,
        s9_load_counts,
        s9_one_of_three_loads,
        s9_one_byte_load,
        s10_variants,
    }
}

impl FollowupReport {
    /// Total event-cap-truncated trials across every measurement —
    /// must be 0 for the paper experiments.
    pub fn truncated_trials(&self) -> u32 {
        let singles = [
            self.seq_minus_one_with_strategy,
            self.seq_minus_one_without_strategy,
            self.s5_drop_rst,
            self.s5_normal,
            self.s6_drop_rst,
            self.s6_normal,
            self.s9_one_of_three_loads,
            self.s9_one_byte_load,
        ];
        singles.iter().map(|e| e.truncated).sum::<u32>()
            + self
                .s9_load_counts
                .iter()
                .map(|(_, e)| e.truncated)
                .sum::<u32>()
            + self
                .s10_variants
                .iter()
                .map(|(_, e)| e.truncated)
                .sum::<u32>()
    }

    /// Render as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("§5 follow-up experiments\n");
        out.push_str(&format!(
            "seq−1 instrumented client, Strategy 1 : censored {} (≈ resync-entry probability)\n",
            self.seq_minus_one_with_strategy
        ));
        out.push_str(&format!(
            "seq−1 instrumented client, no strategy: censored {} (expected 0%)\n",
            self.seq_minus_one_without_strategy
        ));
        out.push_str(&format!(
            "Strategy 5 (FTP): normal {}, induced RST dropped {} (collapses)\n",
            self.s5_normal, self.s5_drop_rst
        ));
        out.push_str(&format!(
            "Strategy 6 (HTTP): normal {}, induced RST dropped {} (unchanged)\n",
            self.s6_normal, self.s6_drop_rst
        ));
        out.push_str("Strategy 9 load-count controls (Kazakhstan):\n");
        for (copies, rate) in &self.s9_load_counts {
            out.push_str(&format!("  {copies} payload copies: {rate}\n"));
        }
        out.push_str(&format!(
            "  3 copies, payload only on last: {}\n",
            self.s9_one_of_three_loads
        ));
        out.push_str(&format!("  1-byte payloads: {}\n", self.s9_one_byte_load));
        out.push_str("Strategy 10 controls (Kazakhstan):\n");
        for (label, rate) in &self.s10_variants {
            out.push_str(&format!("  {label}: {rate}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    #[test]
    fn followups_reproduce_paper_shape() {
        let report = followups(25, 31337);
        // seq−1: with Strategy 1, censorship ≈ resync probability.
        assert!(
            (0.2..=0.85).contains(&report.seq_minus_one_with_strategy.rate()),
            "{}",
            report.render()
        );
        // Without the strategy: never censored.
        assert!(
            report.seq_minus_one_without_strategy.rate() < 0.1,
            "{}",
            report.render()
        );
        // Dropping the induced RST breaks Strategy 5 but not Strategy 6.
        assert!(
            report.s5_drop_rst.rate() + 0.3 < report.s5_normal.rate(),
            "{}",
            report.render()
        );
        assert!(
            (report.s6_drop_rst.rate() - report.s6_normal.rate()).abs() < 0.35,
            "{}",
            report.render()
        );
        // Strategy 9: exactly ≥3 loads work.
        let by_count: Vec<f64> = report
            .s9_load_counts
            .iter()
            .map(|(_, r)| r.rate())
            .collect();
        assert!(
            by_count[0] < 0.1 && by_count[1] < 0.1,
            "{}",
            report.render()
        );
        assert!(
            by_count[2] > 0.9 && by_count[3] > 0.9,
            "{}",
            report.render()
        );
        assert!(
            report.s9_one_of_three_loads.rate() < 0.1,
            "{}",
            report.render()
        );
        assert!(report.s9_one_byte_load.rate() > 0.9, "{}", report.render());
        // Strategy 10: the dot matters; one GET is not enough.
        assert!(report.s10_variants[0].1.rate() > 0.9);
        assert!(report.s10_variants[1].1.rate() > 0.9);
        assert!(report.s10_variants[2].1.rate() < 0.1);
        assert!(report.s10_variants[3].1.rate() < 0.1);
    }
}
