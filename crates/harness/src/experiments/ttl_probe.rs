//! §6: localizing censorship boxes with TTL-limited probes.
//!
//! "We instrumented a client to perform 3-way handshakes with servers
//! of various protocols, and then send the query repeatedly with
//! incrementing TTLs until it elicits a response from a censor. We
//! found that, in China, censorship occurred at the same number of
//! hops for each protocol" — i.e. if there are multiple boxes, they
//! are collocated.

use crate::trial::{CLIENT_ADDR, SERVER_ADDR};
use appproto::AppProtocol;
use censor::Gfw;
use endpoint::{OsProfile, TcpConn};
use netsim::{Endpoint, Io, PathConfig, Simulation};
use packet::{Packet, TcpFlags};

/// A client that handshakes normally, then replays its forbidden
/// request with TTL 1, 2, 3, … until the censor responds.
struct ProbeClient {
    conn: Option<TcpConn>,
    request: Vec<u8>,
    server: ([u8; 4], u16),
    current_ttl: u8,
    /// TTL of the probe that finally drew censor fire.
    elicited_at: Option<u8>,
    max_ttl: u8,
}

impl ProbeClient {
    fn new(request: Vec<u8>, server: ([u8; 4], u16)) -> Self {
        ProbeClient {
            conn: None,
            request,
            server,
            current_ttl: 0,
            elicited_at: None,
            max_ttl: 24,
        }
    }

    fn probe(&mut self, io: &mut Io) {
        let Some(conn) = self.conn.as_ref() else {
            return;
        };
        if !conn.is_established() || self.elicited_at.is_some() {
            return;
        }
        if self.current_ttl >= self.max_ttl {
            return;
        }
        self.current_ttl += 1;
        // Replay the same request bytes at the same sequence number —
        // only the TTL varies, exactly like the paper's probe.
        let mut pkt = Packet::tcp(
            CLIENT_ADDR,
            conn.local().1,
            self.server.0,
            self.server.1,
            TcpFlags::PSH_ACK,
            conn.snd_nxt(),
            conn.rcv_nxt(),
            self.request.clone(),
        );
        pkt.ip.ttl = self.current_ttl;
        pkt.finalize();
        io.send(pkt);
    }
}

impl Endpoint for ProbeClient {
    fn on_start(&mut self, now: u64, io: &mut Io) {
        let mut conn = TcpConn::client(
            (CLIENT_ADDR, 45001),
            self.server,
            0x1111_0000,
            OsProfile::linux(),
        );
        let mut out = Vec::new();
        conn.open(&mut out);
        self.conn = Some(conn);
        for pkt in out {
            io.send(pkt);
        }
        io.wake_at(now + 300_000);
    }

    fn on_packet(&mut self, pkt: Packet, _now: u64, io: &mut Io) {
        if !pkt.checksums_ok() {
            return;
        }
        if let Some(conn) = self.conn.as_mut() {
            let mut out = Vec::new();
            conn.on_packet(&pkt, &mut out);
            for p in out {
                io.send(p);
            }
            if conn.broken.is_some() && self.elicited_at.is_none() {
                // The censor's RST: this TTL reached the box.
                self.elicited_at = Some(self.current_ttl);
            }
        }
    }

    fn on_wake(&mut self, now: u64, io: &mut Io) {
        self.probe(io);
        if self.elicited_at.is_none() && self.current_ttl < self.max_ttl {
            io.wake_at(now + 300_000);
        }
    }
}

/// A silent sink standing in for the far server (probes must die
/// before it anyway; its replies are irrelevant — except the SYN+ACK,
/// which we do need, so it runs a real stack).
struct ProbeServer {
    conn: TcpConn,
}

impl Endpoint for ProbeServer {
    fn on_start(&mut self, _now: u64, _io: &mut Io) {}
    fn on_packet(&mut self, pkt: Packet, _now: u64, io: &mut Io) {
        if !pkt.checksums_ok() {
            return;
        }
        let mut out = Vec::new();
        self.conn.on_packet(&pkt, &mut out);
        for p in out {
            io.send(p);
        }
    }
    fn on_wake(&mut self, _now: u64, _io: &mut Io) {}
}

/// Per-protocol probe results.
#[derive(Debug, Clone)]
pub struct TtlProbeReport {
    /// (protocol, hop count at which censorship was first elicited).
    pub hops: Vec<(AppProtocol, Option<u8>)>,
    /// The path's actual client→censor hop count (ground truth).
    pub true_hops: u8,
}

/// Run the TTL probe against every GFW-censored protocol.
pub fn ttl_probe(seed: u64) -> TtlProbeReport {
    let path = PathConfig::default();
    let mut hops = Vec::new();
    for proto in AppProtocol::all() {
        let keyword = proto.default_keyword();
        let request = forbidden_request_bytes(proto, keyword);
        let port = 20000 + (seed % 999) as u16;
        let client = ProbeClient::new(request, (SERVER_ADDR, port));
        let server = ProbeServer {
            conn: TcpConn::server((SERVER_ADDR, port), 0x2222_0000, OsProfile::linux()),
        };
        let mut gfw = Gfw::standard(seed);
        // Determinism for the probe: the box must not "miss".
        for b in &mut gfw.boxes {
            b.params.baseline_miss = 0.0;
            b.params.p_reassembly_works = 1.0;
        }
        let mut sim = Simulation::with_path(client, server, gfw, path);
        sim.run(30_000_000);
        hops.push((proto, sim.client.elicited_at));
    }
    TtlProbeReport {
        hops,
        true_hops: path.client_to_mb_hops,
    }
}

/// The forbidden client bytes for a protocol, sent raw post-handshake
/// (the GFW boxes don't require protocol-correct preludes).
fn forbidden_request_bytes(proto: AppProtocol, keyword: &str) -> Vec<u8> {
    match proto {
        AppProtocol::Http => {
            appproto::http::HttpClientApp::for_keyword_query(keyword).request_bytes()
        }
        AppProtocol::Https => appproto::tls::client_hello(keyword, 1),
        AppProtocol::DnsTcp => appproto::dns::build_query(keyword, 7),
        AppProtocol::Ftp => format!("RETR {keyword}\r\n").into_bytes(),
        AppProtocol::Smtp => format!("RCPT TO:<{keyword}>\r\n").into_bytes(),
    }
}

impl TtlProbeReport {
    /// The §6 finding: all protocols censored at the same hop count.
    pub fn all_collocated(&self) -> bool {
        let values: Vec<u8> = self.hops.iter().filter_map(|(_, h)| *h).collect();
        values.len() == self.hops.len() && values.windows(2).all(|w| w[0] == w[1])
    }

    /// Render as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("§6 TTL-limited probe localization (China)\n");
        for (proto, hop) in &self.hops {
            match hop {
                Some(h) => out.push_str(&format!(
                    "  {:<6} censorship elicited at TTL {h}\n",
                    proto.name()
                )),
                None => out.push_str(&format!("  {:<6} no censorship elicited\n", proto.name())),
            }
        }
        out.push_str(&format!(
            "  (ground-truth censor position: {} hops; collocated: {})\n",
            self.true_hops,
            self.all_collocated()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    #[test]
    fn every_protocol_elicits_at_the_censor_hop() {
        let report = ttl_probe(11);
        assert!(report.all_collocated(), "{}", report.render());
        for (proto, hop) in &report.hops {
            assert_eq!(*hop, Some(report.true_hops), "{proto}: {:?}", hop);
        }
    }
}
