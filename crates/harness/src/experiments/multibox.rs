//! Figure 3 / §6: evidence that China runs one censorship box per
//! application protocol.
//!
//! Two measurements:
//!
//! 1. **Per-protocol divergence** — the same TCP-level strategy has
//!    wildly different success rates across protocols (Table 2's
//!    China block). Under a single shared stack those rates would be
//!    (nearly) equal; the ablation run shows exactly that flattening.
//! 2. **Co-location** — TTL-limited probes put every protocol's
//!    censorship at the same hop count (see
//!    `crate::experiments::ttl_probe`).

use crate::pool::Pool;
use crate::rates::{success_rate_in, RateEstimate};
use crate::seed::cell_tag;
use crate::trial::{CensorVariant, TrialConfig};
use appproto::AppProtocol;
use censor::Country;
use geneva::library;

/// Success rates of one strategy across the five protocols, under the
/// multi-box GFW and under the single-box ablation.
#[derive(Debug, Clone)]
pub struct MultiboxStrategyRow {
    /// Strategy number.
    pub strategy_id: u32,
    /// Rates under the standard (multi-box) model.
    pub multi_box: Vec<(AppProtocol, RateEstimate)>,
    /// Rates under the single-box ablation.
    pub single_box: Vec<(AppProtocol, RateEstimate)>,
}

impl MultiboxStrategyRow {
    /// Max−min spread of rates across protocols.
    pub fn spread(rates: &[(AppProtocol, RateEstimate)]) -> f64 {
        let values: Vec<f64> = rates.iter().map(|(_, e)| e.rate()).collect();
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        let min = values.iter().cloned().fold(f64::MAX, f64::min);
        max - min
    }
}

/// The Figure-3 report.
#[derive(Debug, Clone)]
pub struct MultiboxReport {
    /// One row per strategy measured.
    pub rows: Vec<MultiboxStrategyRow>,
}

/// Measure the per-protocol spread of strategies 1, 5, and 8 under
/// both GFW models. All (strategy, protocol, model) cells run
/// concurrently on the pool with decorrelated per-cell seeds.
pub fn multibox(trials: u32, base_seed: u64) -> MultiboxReport {
    const IDS: [u32; 3] = [1, 5, 8];
    let protos = AppProtocol::all();

    let mut cells: Vec<(TrialConfig, u64)> = Vec::new();
    for id in IDS {
        let strategy = library::by_id(id).expect("library id");
        for model in ["multi", "single"] {
            for proto in protos {
                let mut cfg = TrialConfig::new(Country::China, proto, strategy.clone(), 0);
                if model == "single" {
                    cfg.censor_variant = CensorVariant::GfwSingleBox;
                }
                let tag = cell_tag(&format!("multibox/{id}/{model}/{proto}"));
                cells.push((cfg, tag));
            }
        }
    }

    let pool = Pool::global();
    let estimates: Vec<RateEstimate> = pool.map_indexed(cells.len(), |i| {
        let (cfg, tag) = &cells[i];
        success_rate_in(&pool, cfg, trials, base_seed, *tag)
    });

    let per_model = protos.len();
    let mut rows = Vec::new();
    for (s, id) in IDS.into_iter().enumerate() {
        let base = s * 2 * per_model;
        let pack = |offset: usize| {
            protos
                .into_iter()
                .enumerate()
                .map(|(p, proto)| (proto, estimates[base + offset + p]))
                .collect()
        };
        rows.push(MultiboxStrategyRow {
            strategy_id: id,
            multi_box: pack(0),
            single_box: pack(per_model),
        });
    }
    MultiboxReport { rows }
}

impl MultiboxReport {
    /// Render as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Figure 3 / §6: multi-box vs single-box GFW\n");
        out.push_str(&format!(
            "{:<10}{:<14}{:>7}{:>7}{:>7}{:>7}{:>7}{:>9}\n",
            "strategy", "model", "DNS", "FTP", "HTTP", "HTTPS", "SMTP", "spread"
        ));
        for row in &self.rows {
            for (model, rates) in [
                ("multi-box", &row.multi_box),
                ("single-box", &row.single_box),
            ] {
                out.push_str(&format!("{:<10}{:<14}", row.strategy_id, model));
                for (_, estimate) in rates {
                    out.push_str(&format!("{:>6}%", estimate.percent()));
                }
                out.push_str(&format!(
                    "{:>8.0}%\n",
                    MultiboxStrategyRow::spread(rates) * 100.0
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    #[test]
    fn multi_box_spreads_single_box_flattens() {
        let report = multibox(30, 777);
        // Strategy 5 (corrupt-ack + load) is the sharpest: ~97 % on FTP,
        // near-baseline on HTTP/HTTPS — a huge spread that the shared
        // stack erases.
        let s5 = report.rows.iter().find(|r| r.strategy_id == 5).unwrap();
        let multi = MultiboxStrategyRow::spread(&s5.multi_box);
        let single = MultiboxStrategyRow::spread(&s5.single_box);
        assert!(
            multi > 0.4,
            "multi-box spread for strategy 5 should be large, got {multi}\n{}",
            report.render()
        );
        assert!(
            single < multi,
            "single box must flatten differences: {single} !< {multi}\n{}",
            report.render()
        );
    }
}
