//! §4.2: residual censorship, end to end.
//!
//! "Over HTTP, the GFW has residual censorship: for approximately 90
//! seconds after a forbidden request is censored, all TCP requests to
//! the server IP and port elicit tear-down packets …. we do not
//! observe this behavior … for SMTP, DNS-over-TCP, or FTP; after the
//! forbidden request on these protocols is censored, the user is free
//! to make a second follow-up request immediately."
//!
//! The probe: a client makes a *forbidden* request; after it is
//! censored, the host's retry machinery opens a brand-new connection
//! (new source port) carrying a *benign* request. Under residual
//! censorship the benign follow-up dies right after its handshake;
//! without it, the follow-up succeeds.

use crate::trial::TrialConfig;
use appproto::{http, AppProtocol};
use censor::Country;
use endpoint::{ClientApp, Outcome};
use geneva::Strategy;

/// Two-phase client app: forbidden request first, benign follow-up on
/// the retry.
struct ForbiddenThenBenign {
    inner: http::HttpClientApp,
    phase: u32,
}

impl ClientApp for ForbiddenThenBenign {
    fn request(&mut self, attempt: u32) -> Vec<u8> {
        self.phase = attempt;
        if attempt == 0 {
            http::HttpClientApp::for_keyword_query("ultrasurf").request_bytes()
        } else {
            http::HttpClientApp::for_keyword_query("kittens").request_bytes()
        }
    }
    fn on_data(&mut self, data: &[u8]) {
        self.inner.on_data(data);
    }
    fn satisfied(&self) -> bool {
        // Only the benign follow-up counts.
        self.phase >= 1 && self.inner.satisfied()
    }
    fn poisoned(&self) -> bool {
        self.inner.poisoned()
    }
    fn max_attempts(&self) -> u32 {
        2
    }
    fn reset_for_retry(&mut self) {
        self.inner = http::HttpClientApp::for_keyword_query("kittens");
    }
}

/// Interactive-protocol variant: forbidden resource first, benign on
/// retry, generic over the standard client apps.
struct TwoPhase {
    forbidden: Box<dyn ClientApp>,
    benign: Box<dyn ClientApp>,
    phase: u32,
}

impl TwoPhase {
    fn new(proto: AppProtocol) -> TwoPhase {
        TwoPhase {
            forbidden: appproto::client_app(proto, proto.default_keyword()),
            benign: appproto::client_app(proto, benign_keyword(proto)),
            phase: 0,
        }
    }
    fn active(&mut self) -> &mut Box<dyn ClientApp> {
        if self.phase == 0 {
            &mut self.forbidden
        } else {
            &mut self.benign
        }
    }
}

fn benign_keyword(proto: AppProtocol) -> &'static str {
    match proto {
        AppProtocol::DnsTcp | AppProtocol::Https => "example.org",
        AppProtocol::Ftp => "readme.txt",
        AppProtocol::Http => "kittens",
        AppProtocol::Smtp => "friend@example.org",
    }
}

impl ClientApp for TwoPhase {
    fn request(&mut self, attempt: u32) -> Vec<u8> {
        self.phase = attempt.min(1);
        let attempt_for_app = 0; // each phase is its own first attempt
        self.active().request(attempt_for_app)
    }
    fn pending_output(&mut self) -> Option<Vec<u8>> {
        self.active().pending_output()
    }
    fn on_data(&mut self, data: &[u8]) {
        self.active().on_data(data);
    }
    fn satisfied(&self) -> bool {
        self.phase >= 1 && self.benign.satisfied()
    }
    fn max_attempts(&self) -> u32 {
        2
    }
    fn reset_for_retry(&mut self) {
        // Phase switch happens in request(); nothing to clear — the
        // benign app is fresh.
    }
}

/// Per-protocol residual verdicts.
#[derive(Debug, Clone)]
pub struct ResidualReport {
    /// (protocol, outcome of the benign follow-up connection).
    pub outcomes: Vec<(AppProtocol, Outcome)>,
}

/// Probe residual censorship for every GFW protocol.
pub fn residual(seed: u64) -> ResidualReport {
    let mut outcomes = Vec::new();
    for proto in AppProtocol::all() {
        let mut cfg = TrialConfig::new(Country::China, proto, Strategy::identity(), seed);
        // Deterministic probe: pick a seed whose first attempt is
        // actually censored (skip baseline-miss seeds).
        let result = loop {
            let result = run_residual_trial(&cfg, proto);
            if result.first_attempt_censored {
                break result;
            }
            cfg.seed += 1;
        };
        outcomes.push((proto, result.followup_outcome));
    }
    ResidualReport { outcomes }
}

struct ResidualTrial {
    first_attempt_censored: bool,
    followup_outcome: Outcome,
}

fn run_residual_trial(cfg: &TrialConfig, proto: AppProtocol) -> ResidualTrial {
    // Swap in the two-phase app by overriding through a custom runner:
    // we reuse run_trial's machinery by constructing the trial manually.
    use crate::trial::{CLIENT_ADDR, SERVER_ADDR};
    use endpoint::{ClientHost, OsProfile, ServerHost};
    use geneva::{Engine, StrategicEndpoint};
    use netsim::Simulation;

    let app: Box<dyn ClientApp> = if proto == AppProtocol::Http {
        Box::new(ForbiddenThenBenign {
            inner: http::HttpClientApp::for_keyword_query("kittens"),
            phase: 0,
        })
    } else {
        Box::new(TwoPhase::new(proto))
    };
    let port = 20000 + (cfg.seed % 999) as u16;
    let client_host = ClientHost::new(
        app,
        OsProfile::linux(),
        CLIENT_ADDR,
        41000 + (cfg.seed % 499) as u16,
        (SERVER_ADDR, port),
        cfg.seed ^ 0xC11E_57A7,
    );
    let server_host = ServerHost::new(
        appproto::server_app(proto),
        SERVER_ADDR,
        port,
        cfg.seed ^ 0x5E47_ED00,
    );
    let client = StrategicEndpoint::new(client_host, Engine::new(Strategy::identity(), 1));
    let server = StrategicEndpoint::new(server_host, Engine::new(Strategy::identity(), 2));
    let censor = Country::China.build(cfg.seed ^ 0xCE50);
    let mut sim = Simulation::with_path(client, server, censor, cfg.path);
    sim.run(60_000_000);

    let injected = sim.trace.middlebox_injected_any();
    ResidualTrial {
        first_attempt_censored: injected,
        followup_outcome: sim.client.inner.outcome(),
    }
}

impl ResidualReport {
    /// Does the report match §4.2: HTTP residually censored, the rest
    /// free to retry immediately?
    pub fn matches_paper(&self) -> bool {
        self.outcomes.iter().all(|(proto, outcome)| match proto {
            AppProtocol::Http => !outcome.is_success(),
            _ => outcome.is_success(),
        })
    }

    /// Render as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("§4.2 residual censorship probe (forbidden request, then benign retry)\n");
        for (proto, outcome) in &self.outcomes {
            out.push_str(&format!(
                "  {:<6} benign follow-up: {:?}{}\n",
                proto.name(),
                outcome,
                if *proto == AppProtocol::Http {
                    "  (residual censorship)"
                } else {
                    ""
                }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    #[test]
    fn http_has_residual_censorship_others_do_not() {
        let report = residual(17);
        assert!(report.matches_paper(), "{}", report.render());
    }
}
