//! Extension experiment: strategy robustness on adverse networks.
//!
//! The paper's vantage points sat behind real (sometimes lossy) paths;
//! §7's carrier anecdote shows path conditions matter. This experiment
//! wraps the GFW in a [`netsim::FaultInjector`] and sweeps packet-loss
//! rates, asking two questions:
//!
//! 1. does the plumbing itself survive loss (retransmission works)? —
//!    the no-censor column stays near 100 %;
//! 2. how gracefully does a one-shot handshake strategy degrade when
//!    its injected packets can be lost? — Strategy 1 decays smoothly
//!    toward the baseline rather than cliff-dropping, because a lost
//!    SYN+ACK is retransmitted and the strategy re-fires.

use crate::pool::{self, Pool};
use crate::rates::RateEstimate;
use crate::seed::{cell_tag, derive_trial_seed};
use crate::trial::{CLIENT_ADDR, SERVER_ADDR};
use appproto::AppProtocol;
use censor::Gfw;
use endpoint::{ClientHost, OsProfile, ServerHost};
use geneva::{Engine, StrategicEndpoint, Strategy};
use netsim::sim::NullMiddlebox;
use netsim::{FaultInjector, Middlebox, PathConfig, Simulation};

/// One row of the loss sweep.
#[derive(Debug, Clone)]
pub struct RobustnessRow {
    /// Packet-loss probability applied in both directions.
    pub loss: f64,
    /// Success without any censor (plumbing health).
    pub no_censor: RateEstimate,
    /// Strategy-1 success against the GFW (HTTP).
    pub strategy1: RateEstimate,
    /// No-evasion success against the GFW (HTTP).
    pub no_evasion: RateEstimate,
}

/// The full sweep.
#[derive(Debug, Clone)]
pub struct RobustnessReport {
    /// Rows in increasing loss order.
    pub rows: Vec<RobustnessRow>,
}

fn run_one(strategy: Strategy, censored: bool, loss: f64, seed: u64) -> bool {
    let port = 20000 + u16::try_from(seed % 999).expect("< 999");
    let mut client_host = ClientHost::new(
        appproto::client_app(AppProtocol::Http, "ultrasurf"),
        OsProfile::linux(),
        CLIENT_ADDR,
        41000 + u16::try_from(seed % 499).expect("< 499"),
        (SERVER_ADDR, port),
        seed ^ 0xC11E,
    );
    // Give lossy runs room to retransmit.
    client_host.timeout_us = 8_000_000;
    client_host.syn_retx_us = 600_000;
    let server_host = ServerHost::new(
        appproto::server_app(AppProtocol::Http),
        SERVER_ADDR,
        port,
        seed ^ 0x5E47,
    );
    let client = StrategicEndpoint::new(client_host, Engine::new(Strategy::identity(), 1));
    let server = StrategicEndpoint::new(server_host, Engine::new(strategy, seed ^ 0x5EED));
    let inner: Box<dyn Middlebox> = if censored {
        Box::new(Gfw::standard(seed ^ 0xCE50))
    } else {
        Box::new(NullMiddlebox)
    };
    let faulty = FaultInjector::new(inner, loss, 0.0, seed ^ 0xFA17);
    let mut sim = Simulation::with_path(client, server, faulty, PathConfig::default());
    sim.run(30_000_000);
    sim.client.inner.outcome().is_success()
}

/// Sweep loss ∈ {0, 5, 10, 20 %} with `trials` per cell. Every
/// (loss, arm) cell runs on the pool with seeds derived from its
/// label, so neither the sweep point nor the arm shares a trial
/// sequence with its neighbours.
pub fn robustness(trials: u32, base_seed: u64) -> RobustnessReport {
    const LOSSES: [f64; 4] = [0.0, 0.05, 0.10, 0.20];
    const ARMS: [&str; 3] = ["no-censor", "strategy1", "no-evasion"];

    let mut cells: Vec<(f64, usize, u64)> = Vec::new();
    for loss in LOSSES {
        for (arm, label) in ARMS.iter().enumerate() {
            let tag = cell_tag(&format!("robustness/{label}/loss-{:.0}", loss * 100.0));
            cells.push((loss, arm, tag));
        }
    }

    let pool = Pool::global();
    let estimates: Vec<RateEstimate> = pool.map_indexed(cells.len(), |c| {
        let (loss, arm, tag) = cells[c];
        let hits = pool.map_indexed(trials as usize, |i| {
            #[allow(clippy::cast_possible_truncation)] // i < trials: u32
            let seed = derive_trial_seed(base_seed, tag, i as u32);
            match arm {
                0 => run_one(Strategy::identity(), false, loss, seed),
                1 => run_one(geneva::library::STRATEGY_1.strategy(), true, loss, seed),
                _ => run_one(Strategy::identity(), true, loss, seed),
            }
        });
        pool::record_trials(u64::from(trials));
        let mut estimate = RateEstimate::of(0, trials);
        for hit in hits {
            if hit {
                estimate.successes += 1;
            }
        }
        estimate
    });

    let rows = LOSSES
        .iter()
        .enumerate()
        .map(|(l, &loss)| RobustnessRow {
            loss,
            no_censor: estimates[l * ARMS.len()],
            strategy1: estimates[l * ARMS.len() + 1],
            no_evasion: estimates[l * ARMS.len() + 2],
        })
        .collect();
    RobustnessReport { rows }
}

impl RobustnessReport {
    /// Render as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("robustness sweep (HTTP, loss applied both directions)\n");
        out.push_str(&format!(
            "{:<8}{:>12}{:>14}{:>14}\n",
            "loss", "no censor", "strategy 1", "no evasion"
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<8}{:>11}%{:>13}%{:>13}%\n",
                format!("{:.0}%", row.loss * 100.0),
                row.no_censor.percent(),
                row.strategy1.percent(),
                row.no_evasion.percent()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    #[test]
    fn retransmission_carries_exchanges_through_loss() {
        let report = robustness(20, 0xB0B);
        let render = report.render();
        let r0 = &report.rows[0];
        assert!(r0.no_censor.rate() > 0.95, "{render}");
        let r10 = report
            .rows
            .iter()
            .find(|r| (r.loss - 0.10).abs() < 1e-9)
            .unwrap();
        assert!(
            r10.no_censor.rate() > 0.8,
            "10% loss should be survivable: {render}"
        );
        // Strategy 1 still clearly beats no-evasion under loss.
        assert!(
            r10.strategy1.rate() > r10.no_evasion.rate() + 0.15,
            "{render}"
        );
    }
}
