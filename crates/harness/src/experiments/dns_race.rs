//! Background experiment (§2.1): why the paper's DNS work is
//! DNS-over-**TCP**.
//!
//! Over UDP the GFW simply injects a forged ("lemon") answer the
//! moment it sees a forbidden QNAME — no connection state exists to
//! attack, and the forgery always beats the real answer to the client
//! because the censor is closer. Over TCP the same lookup rides a
//! handshake, which is exactly the surface the server-side strategies
//! manipulate.

use crate::trial::{CLIENT_ADDR, SERVER_ADDR};
use appproto::dns;
use censor::DnsUdpInjector;
use endpoint::Outcome;
use geneva::Strategy;
use netsim::{Endpoint, Io, PathConfig, Simulation};
use packet::Packet;

/// A minimal UDP stub resolver client: one query, first answer wins.
struct UdpDnsClient {
    name: String,
    /// The first answer received, if any.
    pub answer: Option<[u8; 4]>,
}

impl Endpoint for UdpDnsClient {
    fn on_start(&mut self, _now: u64, io: &mut Io) {
        let mut q = Packet::udp(
            CLIENT_ADDR,
            40000,
            SERVER_ADDR,
            53,
            dns::build_query_message(&self.name, 0x4242),
        );
        q.finalize();
        io.send(q);
    }
    fn on_packet(&mut self, pkt: Packet, _now: u64, _io: &mut Io) {
        if !pkt.checksums_ok() || self.answer.is_some() {
            return; // stub resolvers take the FIRST matching answer
        }
        if pkt.udp_header().map(|u| u.src_port) == Some(53) {
            if let Some(addr) = dns::response_answer(&pkt.payload) {
                self.answer = Some(addr);
            }
        }
    }
    fn on_wake(&mut self, _now: u64, _io: &mut Io) {}
}

/// A truthful UDP resolver.
struct UdpDnsServer;

impl Endpoint for UdpDnsServer {
    fn on_start(&mut self, _now: u64, _io: &mut Io) {}
    fn on_packet(&mut self, pkt: Packet, _now: u64, io: &mut Io) {
        let Some(udp) = pkt.udp_header() else { return };
        if udp.dst_port != 53 {
            return;
        }
        if let Some(resp) = dns::build_response_message(&pkt.payload, dns::ANSWER_IP) {
            let mut out = Packet::udp(pkt.ip.dst, 53, pkt.ip.src, udp.src_port, resp);
            out.finalize();
            io.send(out);
        }
    }
    fn on_wake(&mut self, _now: u64, _io: &mut Io) {}
}

/// Results of the UDP-vs-TCP comparison.
#[derive(Debug, Clone)]
pub struct DnsRaceReport {
    /// The answer the UDP client ended up with.
    pub udp_answer: Option<[u8; 4]>,
    /// Was it the censor's lemon?
    pub udp_poisoned: bool,
    /// DNS-over-TCP without evasion (censored by RST).
    pub tcp_no_evasion: Outcome,
    /// DNS-over-TCP behind a server-side strategy.
    pub tcp_with_strategy: Outcome,
}

/// Run the comparison.
pub fn dns_race(seed: u64) -> DnsRaceReport {
    // --- UDP: the race the client always loses ---
    let client = UdpDnsClient {
        name: "www.wikipedia.org".to_string(),
        answer: None,
    };
    let mut sim = Simulation::with_path(
        client,
        UdpDnsServer,
        DnsUdpInjector::new(),
        PathConfig::default(),
    );
    sim.run(5_000_000);
    let udp_answer = sim.client.answer;
    let udp_poisoned = udp_answer == Some(dns::LEMON_IP);

    // --- TCP: censored without a strategy, evadable with one ---
    use crate::trial::{run_trial, TrialConfig};
    use appproto::AppProtocol;
    use censor::Country;
    let base = TrialConfig::new(
        Country::China,
        AppProtocol::DnsTcp,
        Strategy::identity(),
        seed,
    );
    let tcp_no_evasion = run_trial(&base).outcome;
    // Find a seed where Strategy 1 evades (it succeeds ~87% with
    // retries, so the first few seeds suffice).
    let mut tcp_with_strategy = Outcome::Timeout;
    for s in 0..10 {
        let mut cfg = base.clone();
        cfg.strategy = geneva::library::STRATEGY_1.strategy().into();
        cfg.seed = seed + s;
        let outcome = run_trial(&cfg).outcome;
        tcp_with_strategy = outcome;
        if outcome.is_success() {
            break;
        }
    }

    DnsRaceReport {
        udp_answer,
        udp_poisoned,
        tcp_no_evasion,
        tcp_with_strategy,
    }
}

impl DnsRaceReport {
    /// Render as text.
    pub fn render(&self) -> String {
        format!(
            "§2.1 DNS background: UDP vs TCP\n\
             UDP lookup of www.wikipedia.org: answer {:?} — {}\n\
             TCP lookup, no evasion: {:?}\n\
             TCP lookup behind Strategy 1: {:?}\n",
            self.udp_answer,
            if self.udp_poisoned {
                "POISONED (the censor's lemon won the race)"
            } else {
                "clean"
            },
            self.tcp_no_evasion,
            self.tcp_with_strategy
        )
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    #[test]
    fn udp_is_always_poisoned_tcp_is_evadable() {
        let report = dns_race(5);
        assert!(report.udp_poisoned, "{}", report.render());
        assert!(!report.tcp_no_evasion.is_success(), "{}", report.render());
        assert!(report.tcp_with_strategy.is_success(), "{}", report.render());
    }
}
