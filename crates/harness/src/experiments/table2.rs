//! Table 2: success rates of all server-side strategies, per country
//! and protocol — the paper's headline result.

use crate::pool::Pool;
use crate::rates::{success_rate_in, RateEstimate};
use crate::seed::cell_tag;
use crate::trial::TrialConfig;
use appproto::AppProtocol;
use censor::Country;
use geneva::library;
use geneva::Strategy;

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Country.
    pub country: Country,
    /// Strategy number (0 = no evasion).
    pub strategy_id: u32,
    /// Strategy name.
    pub name: String,
    /// Success rate per protocol (`None` = not applicable, the paper's
    /// "–" cells).
    pub rates: Vec<(AppProtocol, Option<RateEstimate>)>,
}

/// The whole reproduced table.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// All rows, paper order.
    pub rows: Vec<Table2Row>,
    /// Trials per cell.
    pub trials: u32,
}

/// Which strategies the paper reports per country.
fn strategies_for(country: Country) -> Vec<u32> {
    match country {
        Country::China => vec![0, 1, 2, 3, 4, 5, 6, 7, 8],
        Country::India | Country::Iran => vec![0, 8],
        Country::Kazakhstan => vec![0, 8, 9, 10, 11],
    }
}

fn strategy_by_id(id: u32) -> (String, Strategy) {
    if id == 0 {
        return ("No evasion".to_string(), Strategy::identity());
    }
    let named = library::server_side()
        .into_iter()
        .find(|s| s.id == id)
        .expect("valid id");
    (named.name.to_string(), named.strategy())
}

/// Regenerate Table 2 with `trials` trials per (country, strategy,
/// protocol) cell. Cells are evaluated concurrently on the pool and
/// reassembled in paper order, so the table is bit-identical for any
/// worker count.
pub fn table2(trials: u32, base_seed: u64) -> Table2 {
    table2_via(trials, base_seed, false)
}

/// [`table2`], optionally routing every server through the compiled
/// `dplane` instead of the per-trial interpreter. The two paths are
/// bit-identical (same seeds, same compiled semantics), so the table —
/// every cell, not just the headline rates — must not change; a test
/// asserts exactly that.
pub fn table2_via(trials: u32, base_seed: u64, route_via_dplane: bool) -> Table2 {
    // Lay the table out first: every measured cell becomes an index
    // into a flat work list; "–" cells stay `None`.
    let mut cells: Vec<(TrialConfig, u64)> = Vec::new();
    let mut skeleton = Vec::new();
    for country in Country::all() {
        let censored = country.censored_protocols();
        for id in strategies_for(country) {
            let (name, strategy) = strategy_by_id(id);
            let mut slots = Vec::new();
            for proto in AppProtocol::all() {
                if !censored.contains(&proto) {
                    // India/Iran/Kazakhstan rows other than HTTP(S)
                    // exist only for the protocols they censor; the
                    // paper leaves the rest at 100 % (uncensored) in
                    // the no-evasion row.
                    slots.push((proto, None));
                    continue;
                }
                let mut cfg = TrialConfig::new(country, proto, strategy.clone(), 0);
                cfg.route_via_dplane = route_via_dplane;
                let tag = cell_tag(&format!("table2/{}/{id}/{proto}", country.name()));
                slots.push((proto, Some(cells.len())));
                cells.push((cfg, tag));
            }
            skeleton.push((country, id, name, slots));
        }
    }

    let pool = Pool::global();
    let estimates: Vec<RateEstimate> = pool.map_indexed(cells.len(), |i| {
        let (cfg, tag) = &cells[i];
        success_rate_in(&pool, cfg, trials, base_seed, *tag)
    });

    let rows = skeleton
        .into_iter()
        .map(|(country, strategy_id, name, slots)| Table2Row {
            country,
            strategy_id,
            name,
            rates: slots
                .into_iter()
                .map(|(proto, slot)| (proto, slot.map(|i| estimates[i])))
                .collect(),
        })
        .collect();
    Table2 { rows, trials }
}

impl Table2 {
    /// The rate for (country, strategy, protocol), if measured.
    pub fn rate(&self, country: Country, id: u32, proto: AppProtocol) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.country == country && r.strategy_id == id)
            .and_then(|r| {
                r.rates
                    .iter()
                    .find(|(p, _)| *p == proto)
                    .and_then(|(_, e)| e.map(|e| e.rate()))
            })
    }

    /// Total event-cap-truncated trials across all measured cells.
    /// The paper experiments must report 0 — a nonzero count means
    /// some cell's rate is an artifact of the livelock guard.
    pub fn truncated_trials(&self) -> u32 {
        self.rows
            .iter()
            .flat_map(|r| r.rates.iter())
            .filter_map(|(_, e)| e.as_ref())
            .map(|e| e.truncated)
            .sum()
    }

    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Table 2: server-side strategy success rates ({} trials/cell)\n",
            self.trials
        ));
        out.push_str(&format!(
            "{:<4}{:<30}{:>7}{:>7}{:>7}{:>7}{:>7}\n",
            "#", "Description", "DNS", "FTP", "HTTP", "HTTPS", "SMTP"
        ));
        let mut current_country = None;
        for row in &self.rows {
            if current_country != Some(row.country) {
                current_country = Some(row.country);
                out.push_str(&format!("{}\n", row.country.name()));
            }
            let id = if row.strategy_id == 0 {
                "–".to_string()
            } else {
                row.strategy_id.to_string()
            };
            out.push_str(&format!("{id:<4}{:<30}", row.name));
            for (_, estimate) in &row.rates {
                match estimate {
                    Some(e) => out.push_str(&format!("{:>6}%", e.percent())),
                    None => out.push_str(&format!("{:>7}", "–")),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    #[test]
    fn china_has_nine_rows_kazakhstan_five() {
        let t = table2(2, 1); // tiny: structural test only
        let china: Vec<_> = t
            .rows
            .iter()
            .filter(|r| r.country == Country::China)
            .collect();
        assert_eq!(china.len(), 9);
        let kz: Vec<_> = t
            .rows
            .iter()
            .filter(|r| r.country == Country::Kazakhstan)
            .collect();
        assert_eq!(kz.len(), 5);
        assert!(t.render().contains("China"));
        assert_eq!(t.truncated_trials(), 0, "paper cells must never truncate");
    }

    #[test]
    fn india_rows_only_cover_http() {
        let t = table2(2, 1);
        let row = t
            .rows
            .iter()
            .find(|r| r.country == Country::India && r.strategy_id == 8)
            .unwrap();
        for (proto, estimate) in &row.rates {
            assert_eq!(estimate.is_some(), *proto == AppProtocol::Http, "{proto}");
        }
    }
}
