//! §7's closing anecdote: "Results Can Vary by Network".
//!
//! The paper ran all strategies from a phone over wifi and two
//! cellular carriers in a non-censoring country: wifi passed
//! everything; T-Mobile broke Strategies 1 and 3; AT&T broke all
//! three simultaneous-open strategies (1, 2, 3). The culprits are
//! benign in-network middleboxes that refuse server-originated SYNs.

use crate::trial::{run_trial, TrialConfig};
use appproto::AppProtocol;
use censor::Carrier;
use geneva::library;

/// One (carrier, strategy) verdict.
#[derive(Debug, Clone)]
pub struct NetworkCompatCell {
    /// Access network.
    pub carrier: Carrier,
    /// Strategy number.
    pub strategy_id: u32,
    /// Did the exchange complete?
    pub works: bool,
}

/// The full carrier matrix.
#[derive(Debug, Clone)]
pub struct NetworkCompatReport {
    /// All verdicts.
    pub cells: Vec<NetworkCompatCell>,
}

/// Run every strategy over every carrier profile (Android client, no
/// censor — the paper's setup).
pub fn network_compat(seed: u64) -> NetworkCompatReport {
    let android = *endpoint::profile::all_profiles()
        .iter()
        .find(|p| p.name == "Android 10")
        .expect("Android profile");
    let mut cells = Vec::new();
    for carrier in Carrier::all() {
        for named in library::server_side() {
            let works = (0..3).any(|i| {
                let mut cfg = TrialConfig::private_network(
                    AppProtocol::Http,
                    named.strategy(),
                    android,
                    seed + i,
                );
                cfg.carrier = Some(carrier);
                run_trial(&cfg).evaded()
            });
            cells.push(NetworkCompatCell {
                carrier,
                strategy_id: named.id,
                works,
            });
        }
    }
    NetworkCompatReport { cells }
}

impl NetworkCompatReport {
    /// Strategies that fail on a given carrier.
    pub fn failing_on(&self, carrier: Carrier) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .cells
            .iter()
            .filter(|c| c.carrier == carrier && !c.works)
            .map(|c| c.strategy_id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Render the matrix.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("§7 network compatibility (Android 10, non-censoring country)\n");
        out.push_str(&format!("{:<10}", "network"));
        for id in 1..=11 {
            out.push_str(&format!("{id:>4}"));
        }
        out.push('\n');
        for carrier in Carrier::all() {
            out.push_str(&format!("{:<10}", carrier.name()));
            for id in 1..=11 {
                let works = self
                    .cells
                    .iter()
                    .find(|c| c.carrier == carrier && c.strategy_id == id)
                    .map(|c| c.works)
                    .unwrap_or(false);
                out.push_str(if works { "   ✓" } else { "   ✗" });
            }
            out.push('\n');
        }
        out
    }

    /// Sanity check against OsProfile::linux() — unused helper kept
    /// out; see tests.
    pub fn wifi_all_pass(&self) -> bool {
        self.failing_on(Carrier::Wifi).is_empty()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    #[test]
    fn carrier_matrix_matches_the_papers_anecdote() {
        let report = network_compat(4242);
        assert!(report.wifi_all_pass(), "{}", report.render());
        assert_eq!(
            report.failing_on(Carrier::TMobile),
            vec![1, 3],
            "{}",
            report.render()
        );
        assert_eq!(
            report.failing_on(Carrier::Att),
            vec![1, 2, 3],
            "{}",
            report.render()
        );
    }
}
