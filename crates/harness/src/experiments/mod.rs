//! One driver per paper table / figure / section result.
//!
//! Every driver returns a structured result with a `render()` method
//! producing the text the paper's table or figure would show; the
//! `bench` crate and `examples/` binaries call these directly, and the
//! integration tests assert on the *shape* of the results (who wins,
//! by roughly what factor, where crossovers fall).

pub mod dns_race;
pub mod followups;
pub mod multibox;
pub mod network_compat;
pub mod overhead;
pub mod residual;
pub mod robustness;
pub mod section3;
pub mod section7;
pub mod table1;
pub mod table2;
pub mod ttl_probe;

pub use dns_race::{dns_race, DnsRaceReport};
pub use followups::{followups, FollowupReport};
pub use multibox::{multibox, MultiboxReport};
pub use network_compat::{network_compat, NetworkCompatReport};
pub use overhead::{overhead, OverheadReport};
pub use residual::{residual, ResidualReport};
pub use robustness::{robustness, RobustnessReport};
pub use section3::{section3, Section3Report};
pub use section7::{client_compat, ClientCompatReport};
pub use table1::table1;
pub use table2::{table2, table2_via, Table2};
pub use ttl_probe::{ttl_probe, TtlProbeReport};

use crate::trial::{run_trial, TrialConfig};
use crate::waterfall::render_waterfall;
use appproto::AppProtocol;
use censor::Country;
use geneva::library;

/// Figure 1: one traced run per China strategy (1–8), rendered as
/// packet waterfalls. Strategies 3/4/5 are shown over FTP (where they
/// matter); the rest over HTTP, as in the paper's figure.
pub fn figure1(seed: u64) -> String {
    let mut out = String::new();
    for named in library::server_side().iter().take(8) {
        let proto = match named.id {
            3..=5 => AppProtocol::Ftp,
            _ => AppProtocol::Http,
        };
        // Find a seed where the strategy succeeds so the waterfall
        // shows the working mechanism (the paper's figures depict
        // successful runs).
        let mut chosen = None;
        for s in 0..40 {
            let cfg = TrialConfig::new(Country::China, proto, named.strategy(), seed + s);
            let result = run_trial(&cfg);
            if result.evaded() {
                chosen = Some(result);
                break;
            }
            if chosen.is_none() {
                chosen = Some(result);
            }
        }
        let result = chosen.expect("at least one run");
        out.push_str(&render_waterfall(
            &format!("Strategy {}: {} ({proto}, China)", named.id, named.name),
            &result.trace,
        ));
        out.push('\n');
    }
    out
}

/// Figure 2: waterfalls for the Kazakhstan strategies (9–11), plus
/// Strategy 8 which also works there.
pub fn figure2(seed: u64) -> String {
    let mut out = String::new();
    for named in [
        library::STRATEGY_9,
        library::STRATEGY_10,
        library::STRATEGY_11,
        library::STRATEGY_8,
    ] {
        let cfg = TrialConfig::new(
            Country::Kazakhstan,
            AppProtocol::Http,
            named.strategy(),
            seed,
        );
        let result = run_trial(&cfg);
        out.push_str(&render_waterfall(
            &format!(
                "Strategy {}: {} (HTTP, Kazakhstan) — {}",
                named.id,
                named.name,
                if result.evaded() {
                    "evaded"
                } else {
                    "censored"
                }
            ),
            &result.trace,
        ));
        out.push('\n');
    }
    out
}
