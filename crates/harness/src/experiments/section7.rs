//! §7: client compatibility across 17 operating systems.
//!
//! The paper runs every strategy against every client OS on a private
//! network (no censor): a strategy is *client-compatible* when the
//! unmodified client still completes the exchange. Three strategies
//! (5, 9, 10) put payloads on SYN+ACK packets and break Windows and
//! macOS; re-sending those payloads as corrupted-checksum insertion
//! packets fixes all three everywhere.

use crate::trial::{run_trial, TrialConfig};
use appproto::AppProtocol;
use endpoint::{profile, OsProfile};
use geneva::library;

/// One (strategy, OS) compatibility verdict.
#[derive(Debug, Clone)]
pub struct CompatCell {
    /// Strategy number.
    pub strategy_id: u32,
    /// OS name.
    pub os: &'static str,
    /// Did the exchange complete?
    pub works: bool,
}

/// The §7 report.
#[derive(Debug, Clone)]
pub struct ClientCompatReport {
    /// Original strategies × OSes.
    pub cells: Vec<CompatCell>,
    /// Checksum-fixed variants of 5/9/10 × OSes.
    pub fixed_cells: Vec<CompatCell>,
}

/// Run the compatibility matrix (HTTP on a censor-free network).
pub fn client_compat(seed: u64) -> ClientCompatReport {
    let mut cells = Vec::new();
    let mut fixed_cells = Vec::new();
    for os in profile::all_profiles() {
        for named in library::server_side() {
            let works = strategy_works(named.strategy(), *os, seed);
            cells.push(CompatCell {
                strategy_id: named.id,
                os: os.name,
                works,
            });
            if let Some(fixed) = library::client_compat_fix(named.id) {
                fixed_cells.push(CompatCell {
                    strategy_id: named.id,
                    os: os.name,
                    works: strategy_works(fixed.strategy(), *os, seed ^ 0xF1F),
                });
            }
        }
    }
    ClientCompatReport { cells, fixed_cells }
}

fn strategy_works(strategy: geneva::Strategy, os: OsProfile, seed: u64) -> bool {
    // A couple of seeds so a single unlucky corrupt-value draw doesn't
    // misclassify a strategy.
    (0..3).any(|i| {
        let cfg = TrialConfig::private_network(AppProtocol::Http, strategy.clone(), os, seed + i);
        run_trial(&cfg).evaded()
    })
}

impl ClientCompatReport {
    /// Which strategies fail on at least one OS (paper: {5, 9, 10})?
    pub fn broken_strategies(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .cells
            .iter()
            .filter(|c| !c.works)
            .map(|c| c.strategy_id)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Do all fixed variants work on every OS?
    pub fn all_fixed(&self) -> bool {
        !self.fixed_cells.is_empty() && self.fixed_cells.iter().all(|c| c.works)
    }

    /// The OSes a strategy fails on.
    pub fn failing_oses(&self, strategy_id: u32) -> Vec<&'static str> {
        self.cells
            .iter()
            .filter(|c| c.strategy_id == strategy_id && !c.works)
            .map(|c| c.os)
            .collect()
    }

    /// Render the matrix.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("§7 client compatibility (✓ works, ✗ breaks), HTTP, no censor\n");
        out.push_str(&format!("{:<34}", "OS"));
        for id in 1..=11 {
            out.push_str(&format!("{id:>4}"));
        }
        out.push('\n');
        for os in profile::all_profiles() {
            out.push_str(&format!("{:<34}", os.name));
            for id in 1..=11 {
                let works = self
                    .cells
                    .iter()
                    .find(|c| c.strategy_id == id && c.os == os.name)
                    .map(|c| c.works)
                    .unwrap_or(false);
                out.push_str(if works { "   ✓" } else { "   ✗" });
            }
            out.push('\n');
        }
        out.push_str("\nchecksum-fixed variants of 5/9/10: ");
        out.push_str(if self.all_fixed() {
            "work on every OS ✓\n"
        } else {
            "STILL FAILING SOMEWHERE ✗\n"
        });
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;
    use endpoint::OsFamily;

    #[test]
    fn exactly_5_9_10_break_and_only_on_windows_macos() {
        let report = client_compat(2024);
        assert_eq!(
            report.broken_strategies(),
            vec![5, 9, 10],
            "{}",
            report.render()
        );
        for id in [5, 9, 10] {
            let failing = report.failing_oses(id);
            assert!(!failing.is_empty());
            for os_name in failing {
                let os = profile::all_profiles()
                    .iter()
                    .find(|p| p.name == os_name)
                    .unwrap();
                assert!(
                    matches!(os.family, OsFamily::Windows | OsFamily::MacOs),
                    "strategy {id} failed on {os_name}"
                );
            }
            // And it fails on ALL Windows/macOS versions.
            let failing = report.failing_oses(id);
            let win_mac_count = profile::all_profiles()
                .iter()
                .filter(|p| matches!(p.family, OsFamily::Windows | OsFamily::MacOs))
                .count();
            assert_eq!(failing.len(), win_mac_count, "strategy {id}");
        }
    }

    #[test]
    fn checksum_fix_restores_universal_compatibility() {
        let report = client_compat(2024);
        assert!(report.all_fixed(), "{}", report.render());
    }
}
