//! §3: client-side strategies do not generalize to the server side.
//!
//! The experiment has two arms:
//!
//! 1. **Client-side deployment** (the control): prior work's
//!    insertion-packet strategies, run at the client against the GFW's
//!    HTTP box — these *work* (that's why prior work published them).
//! 2. **Server-side analogs**: the same insertion packets emitted by
//!    the server before or after its SYN+ACK — the paper's negative
//!    result is that **none** of them work. In our model this falls
//!    out mechanistically: a server-side insertion packet arms the
//!    resync state, but the resync then *lands on a correct-sequence
//!    client packet* (the ordinary handshake ACK), leaving the censor
//!    synchronized; only simultaneous open (a *client-behavior*
//!    change the §5 strategies induce) makes the landing go wrong.

use crate::pool::Pool;
use crate::rates::{success_rate_in, RateEstimate};
use crate::seed::cell_tag;
use crate::trial::TrialConfig;
use appproto::AppProtocol;
use censor::Country;
use geneva::library::{self, AnalogPosition};

/// One §3 measurement.
#[derive(Debug, Clone)]
pub struct Section3Entry {
    /// Strategy/analog name.
    pub name: String,
    /// Where it ran.
    pub deployment: &'static str,
    /// Measured evasion rate.
    pub rate: RateEstimate,
}

/// The full §3 report.
#[derive(Debug, Clone)]
pub struct Section3Report {
    /// Client-side controls (expected: high success).
    pub client_side: Vec<Section3Entry>,
    /// Server-side analogs (expected: ~baseline, i.e. failure).
    pub server_side_analogs: Vec<Section3Entry>,
    /// The no-evasion baseline for reference.
    pub baseline: RateEstimate,
}

/// Run the §3 experiment against the GFW's HTTP censorship. Every
/// entry (baseline, client-side controls, server-side analogs) is one
/// pool cell; seeds derive from the entry's name, so no two entries
/// share a trial sequence.
pub fn section3(trials: u32, base_seed: u64) -> Section3Report {
    let baseline_cfg = TrialConfig::new(
        Country::China,
        AppProtocol::Http,
        geneva::Strategy::identity(),
        0,
    );

    // Flat cell list: (name, deployment, config).
    let mut cells: Vec<(String, &'static str, TrialConfig)> =
        vec![("baseline".to_string(), "baseline", baseline_cfg.clone())];
    for named in library::client_side() {
        // Segmentation has no server analog and is client-specific;
        // include it in the client-side control set all the same.
        let mut cfg = baseline_cfg.clone();
        cfg.client_strategy = Some(named.strategy().into());
        cells.push((named.name.to_string(), "client", cfg));
    }
    for (name, position, strategy) in library::server_side_analogs() {
        let mut cfg = baseline_cfg.clone();
        cfg.strategy = strategy.into();
        let position_name = match position {
            AnalogPosition::BeforeSynAck => "before SYN+ACK",
            AnalogPosition::AfterSynAck => "after SYN+ACK",
        };
        cells.push((format!("{name} ({position_name})"), "server", cfg));
    }

    let pool = Pool::global();
    let rates: Vec<RateEstimate> = pool.map_indexed(cells.len(), |i| {
        let (name, deployment, cfg) = &cells[i];
        let tag = cell_tag(&format!("section3/{deployment}/{name}"));
        success_rate_in(&pool, cfg, trials, base_seed, tag)
    });

    let mut report = Section3Report {
        client_side: Vec::new(),
        server_side_analogs: Vec::new(),
        baseline: rates[0],
    };
    for ((name, deployment, _), rate) in cells.into_iter().zip(rates).skip(1) {
        let entry = Section3Entry {
            name,
            deployment,
            rate,
        };
        match deployment {
            "client" => report.client_side.push(entry),
            _ => report.server_side_analogs.push(entry),
        }
    }
    report
}

impl Section3Report {
    /// Render as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("§3: do client-side strategies generalize to the server side?\n");
        out.push_str(&format!("baseline (no evasion): {}\n\n", self.baseline));
        out.push_str("client-side deployment (control — these work):\n");
        for entry in &self.client_side {
            out.push_str(&format!("  {:<44} {}\n", entry.name, entry.rate));
        }
        out.push_str("\nserver-side analogs (the paper's negative result — these fail):\n");
        for entry in &self.server_side_analogs {
            out.push_str(&format!("  {:<44} {}\n", entry.name, entry.rate));
        }
        out
    }

    /// The paper's headline: every server-side analog is ~baseline.
    pub fn analogs_all_fail(&self, tolerance: f64) -> bool {
        self.server_side_analogs
            .iter()
            .all(|e| e.rate.rate() <= self.baseline.rate() + tolerance)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    #[test]
    fn client_side_works_server_analogs_fail() {
        let report = section3(40, 4242);
        // Control: insertion-packet strategies from the client side
        // defeat the GFW's HTTP box.
        let teardowns: Vec<_> = report
            .client_side
            .iter()
            .filter(|e| e.name.contains("Teardown"))
            .collect();
        assert!(!teardowns.is_empty());
        for entry in teardowns {
            assert!(
                entry.rate.rate() > 0.8,
                "client-side {} only {}",
                entry.name,
                entry.rate
            );
        }
        // The negative result: no analog beats baseline by more than
        // noise.
        assert!(report.analogs_all_fail(0.15), "{}", report.render());
    }
}
