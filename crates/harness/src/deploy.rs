//! §8 deployment considerations: which strategy should a server apply
//! to which client?
//!
//! "In deployment, the server must determine which strategy to use on
//! a per-client basis … based only on the client's SYN packet.
//! Coarse-grained, country-level IP geolocation may suffice for
//! nation-states that exhibit mostly consistent censorship behavior
//! throughout their borders (like China)."
//!
//! This module is the library-shaped version of that paragraph: a tiny
//! prefix-based geolocation table (documentation-prefix ranges stand in
//! for a GeoIP database) and a per-(country, protocol) strategy ranking
//! derived from the paper's Table 2.

use appproto::AppProtocol;
use censor::Country;
use geneva::library::{self, NamedStrategy};
use geneva::Strategy;
use std::fmt;
use std::sync::Arc;

/// A (prefix, mask-length, country) entry — a toy GeoIP row.
#[derive(Debug, Clone, Copy)]
pub struct GeoEntry {
    /// Network address.
    pub prefix: [u8; 4],
    /// Prefix length in bits.
    pub len: u8,
    /// Mapped country.
    pub country: Country,
}

/// The built-in demonstration rows (documentation ranges; a real
/// deployment would load MaxMind or similar — or `--geo <file>`).
pub fn demo_geo_entries() -> Vec<GeoEntry> {
    vec![
        GeoEntry {
            prefix: [10, 7, 0, 0],
            len: 16,
            country: Country::China,
        },
        GeoEntry {
            prefix: [10, 91, 0, 0],
            len: 16,
            country: Country::India,
        },
        GeoEntry {
            prefix: [10, 98, 0, 0],
            len: 16,
            country: Country::Iran,
        },
        GeoEntry {
            prefix: [10, 77, 0, 0],
            len: 16,
            country: Country::Kazakhstan,
        },
    ]
}

/// [`demo_geo_entries`] built into a lookup table.
pub fn demo_geo_table() -> GeoTable {
    GeoTable::new(demo_geo_entries())
}

fn mask_of(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - u32::from(len.min(32)))
    }
}

/// A generic sorted-table longest-prefix-match index: the LPM
/// machinery shared by [`GeoTable`] (prefix → country) and
/// [`RolloutTable`] (prefix → A/B rule group).
///
/// Entries are normalized (network masked to its prefix length) and
/// grouped by prefix length, longest first; each group is sorted by
/// network address. A lookup binary-searches one group per distinct
/// length and returns on the first (i.e. longest) hit — `O(L log n)`
/// for `L` distinct prefix lengths, instead of a linear scan over
/// every row per packet. On the data-plane fast path this runs once
/// per flow (first SYN), over tables that in a real deployment hold
/// hundreds of thousands of rows.
#[derive(Debug, Clone)]
pub struct Lpm<T: Copy> {
    /// `(masked network, prefix length, value)`, sorted by length
    /// descending then network ascending; deduplicated on
    /// `(network, length)` with later rows overriding earlier ones.
    entries: Vec<(u32, u8, T)>,
    /// Contiguous `entries` run per distinct prefix length:
    /// `(len, start, end)`, longest length first.
    runs: Vec<(u8, usize, usize)>,
}

impl<T: Copy> Default for Lpm<T> {
    fn default() -> Lpm<T> {
        Lpm {
            entries: Vec::new(),
            runs: Vec::new(),
        }
    }
}

impl<T: Copy> Lpm<T> {
    /// Build the lookup structure from arbitrary-order
    /// `(prefix, len, value)` rows.
    pub fn new(rows: impl IntoIterator<Item = ([u8; 4], u8, T)>) -> Lpm<T> {
        let mut entries: Vec<(u32, u8, T)> = rows
            .into_iter()
            .map(|(prefix, len, value)| {
                let len = len.min(32);
                (u32::from_be_bytes(prefix) & mask_of(len), len, value)
            })
            .collect();
        // Stable sort + keep-last dedup: rows later in the input
        // override earlier duplicates of the same (network, length) —
        // the tie-break rule for identical prefixes.
        entries.sort_by_key(|&(net, len, _)| (std::cmp::Reverse(len), net));
        let mut deduped: Vec<(u32, u8, T)> = Vec::with_capacity(entries.len());
        for entry in entries {
            match deduped.last_mut() {
                Some(last) if last.0 == entry.0 && last.1 == entry.1 => *last = entry,
                _ => deduped.push(entry),
            }
        }
        let mut runs = Vec::new();
        let mut start = 0;
        while start < deduped.len() {
            let len = deduped[start].1;
            let end = start + deduped[start..].iter().take_while(|e| e.1 == len).count();
            runs.push((len, start, end));
            start = end;
        }
        Lpm {
            entries: deduped,
            runs,
        }
    }

    /// Number of (deduplicated) rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the index holds no rows.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Longest-prefix-match `addr`: the value of the most specific
    /// covering prefix, or `None` when nothing covers it.
    pub fn locate(&self, addr: [u8; 4]) -> Option<T> {
        let ip = u32::from_be_bytes(addr);
        for &(len, start, end) in &self.runs {
            let masked = ip & mask_of(len);
            if let Ok(i) = self.entries[start..end].binary_search_by_key(&masked, |e| e.0) {
                return Some(self.entries[start + i].2);
            }
        }
        None
    }
}

/// A geolocation table: [`Lpm`] over countries.
#[derive(Debug, Clone, Default)]
pub struct GeoTable {
    lpm: Lpm<Country>,
}

impl GeoTable {
    /// Build the lookup structure from arbitrary-order rows.
    pub fn new(rows: impl IntoIterator<Item = GeoEntry>) -> GeoTable {
        GeoTable {
            lpm: Lpm::new(rows.into_iter().map(|e| (e.prefix, e.len, e.country))),
        }
    }

    /// Number of (deduplicated) rows.
    pub fn len(&self) -> usize {
        self.lpm.len()
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.lpm.is_empty()
    }

    /// Longest-prefix-match `addr`: the country of the most specific
    /// covering prefix, or `None` when nothing covers it.
    pub fn locate(&self, addr: [u8; 4]) -> Option<Country> {
        self.lpm.locate(addr)
    }
}

/// Longest-prefix-match a client address against unindexed rows
/// (convenience; builds the sorted table per call — hot paths should
/// hold a [`GeoTable`]).
pub fn locate(addr: [u8; 4], table: &[GeoEntry]) -> Option<Country> {
    GeoTable::new(table.iter().copied()).locate(addr)
}

/// The paper's Table-2-derived ranking: the best strategies for a
/// (country, protocol) pair, most effective first. Empty when the
/// country doesn't censor the protocol (deploy nothing).
pub fn recommend(country: Country, protocol: AppProtocol) -> Vec<NamedStrategy> {
    use AppProtocol as P;
    let ids: &[u32] = match (country, protocol) {
        // China, Table 2 column order by success rate:
        (Country::China, P::DnsTcp) => &[1, 7, 6, 2],
        (Country::China, P::Ftp) => &[5, 7, 3, 6, 1],
        (Country::China, P::Http) => &[1, 2, 7, 6],
        (Country::China, P::Https) => &[2, 6],
        (Country::China, P::Smtp) => &[8, 1, 7],
        (Country::India, P::Http) => &[8],
        (Country::Iran, P::Http) | (Country::Iran, P::Https) => &[8],
        (Country::Kazakhstan, P::Http) => &[8, 9, 10, 11],
        _ => &[],
    };
    ids.iter()
        .map(|id| {
            library::server_side()
                .into_iter()
                .find(|s| s.id == *id)
                .expect("ranked ids exist")
        })
        .collect()
}

/// The top-ranked, client-OS-safe pick for a (country, protocol):
/// strategies 5/9/10 are swapped for their §7 checksum-fixed variants,
/// since the server cannot know the client OS from a SYN.
pub fn top_pick(country: Country, protocol: AppProtocol) -> Option<NamedStrategy> {
    let named = recommend(country, protocol).into_iter().next()?;
    Some(library::client_compat_fix(named.id).unwrap_or(named))
}

/// End-to-end pick: from a client SYN's source address to the strategy
/// a deployment should apply.
pub fn pick_for_client(
    client_addr: [u8; 4],
    protocol: AppProtocol,
    table: &GeoTable,
) -> Option<NamedStrategy> {
    top_pick(table.locate(client_addr)?, protocol)
}

// ---------------------------------------------------------------------------
// Text-file tables and per-prefix A/B rollout
// ---------------------------------------------------------------------------

/// A parse failure in a deploy table file, pinned to the offending
/// line and column (both 1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableParseError {
    /// 1-based line number within the file.
    pub line: usize,
    /// 1-based column (byte offset within the line, +1).
    pub col: usize,
    /// What went wrong.
    pub msg: String,
}

impl TableParseError {
    fn new(line: usize, col0: usize, msg: impl Into<String>) -> TableParseError {
        TableParseError {
            line,
            col: col0 + 1,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for TableParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for TableParseError {}

/// Whitespace-split tokens of a line with their 0-based byte offsets.
fn token_offsets(line: &str) -> impl Iterator<Item = (usize, &str)> {
    line.split_whitespace().map(move |tok| {
        let off = tok.as_ptr() as usize - line.as_ptr() as usize;
        (off, tok)
    })
}

/// Parse `a.b.c.d/len` into a (prefix, len) pair.
fn parse_prefix(tok: &str, line: usize, col0: usize) -> Result<([u8; 4], u8), TableParseError> {
    let err = |msg: String| TableParseError::new(line, col0, msg);
    let (net, len) = tok
        .split_once('/')
        .ok_or_else(|| err(format!("expected '<a.b.c.d>/<len>', got {tok:?}")))?;
    let mut prefix = [0u8; 4];
    let mut octets = net.split('.');
    for slot in &mut prefix {
        *slot = octets
            .next()
            .and_then(|o| o.parse().ok())
            .ok_or_else(|| err(format!("bad IPv4 network {net:?}")))?;
    }
    if octets.next().is_some() {
        return Err(err(format!("bad IPv4 network {net:?}")));
    }
    let len: u8 = len
        .parse()
        .ok()
        .filter(|l| *l <= 32)
        .ok_or_else(|| err(format!("prefix length {len:?} not in 0..=32")))?;
    Ok((prefix, len))
}

/// Parse a geolocation file: one `<a.b.c.d>/<len> <country>` row per
/// line, `#` comments, blank lines ignored. Duplicate (network, len)
/// rows follow the table-wide tie-break: the later row wins.
///
/// ```text
/// # clients behind the GFW
/// 10.7.0.0/16  china
/// 10.7.9.0/24  iran    # a more specific carve-out
/// ```
pub fn parse_geo_file(text: &str) -> Result<Vec<GeoEntry>, TableParseError> {
    let mut rows = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = &raw[..raw.find('#').unwrap_or(raw.len())];
        let mut toks = token_offsets(line);
        let Some((col0, prefix_tok)) = toks.next() else {
            continue;
        };
        let (prefix, len) = parse_prefix(prefix_tok, line_no, col0)?;
        let Some((ccol, country_tok)) = toks.next() else {
            return Err(TableParseError::new(
                line_no,
                line.len(),
                "expected '<a.b.c.d>/<len> <country>'",
            ));
        };
        let country = Country::parse(country_tok).ok_or_else(|| {
            TableParseError::new(
                line_no,
                ccol,
                format!(
                    "unknown country {country_tok:?} (expected one of: {})",
                    Country::all()
                        .map(|c| c.name().to_ascii_lowercase())
                        .join(", ")
                ),
            )
        })?;
        if let Some((ecol, extra)) = toks.next() {
            return Err(TableParseError::new(
                line_no,
                ecol,
                format!("unexpected trailing token {extra:?}"),
            ));
        }
        rows.push(GeoEntry {
            prefix,
            len,
            country,
        });
    }
    Ok(rows)
}

/// Deterministic A/B bucket (0..100) for a client address: FNV-1a over
/// the four octets, finished with a splitmix64 avalanche. Pure in the
/// address — a client keeps its arm across reloads, restarts, and
/// machines, so a percentage rollout never flaps anyone back and
/// forth.
pub fn ab_bucket(addr: [u8; 4]) -> u8 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in addr {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut z = hash.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    u8::try_from(z % 100).unwrap_or(0)
}

/// One arm of a percentage rollout: `percent`% of a prefix's clients
/// get `strategy`.
#[derive(Debug, Clone)]
pub struct RolloutArm {
    /// Share of the prefix's clients (1..=100) on this arm.
    pub percent: u8,
    /// The strategy DSL as written (report/metrics label).
    pub text: String,
    /// The parsed strategy.
    pub strategy: Arc<Strategy>,
}

/// All arms for one prefix. Clients whose bucket falls past the last
/// arm's cumulative percentage pass through with no evasion (the
/// control arm).
#[derive(Debug, Clone)]
pub struct RolloutRule {
    /// Network address (normalized: host bits zeroed).
    pub prefix: [u8; 4],
    /// Prefix length in bits.
    pub len: u8,
    /// Arms in file order; cumulative percent ≤ 100.
    pub arms: Vec<RolloutArm>,
}

/// Per-client-prefix A/B rollout: longest-prefix match to a rule, then
/// a deterministic percentage split ([`ab_bucket`]) across that rule's
/// arms. This is `harness::deploy`'s LPM grown into the §8 deployment
/// story's missing piece — gradual, per-vantage rollout of candidate
/// strategies with a pass-through control group.
#[derive(Debug, Clone, Default)]
pub struct RolloutTable {
    rules: Vec<RolloutRule>,
    lpm: Lpm<usize>,
}

impl RolloutTable {
    /// Build from rules, merging arms of duplicate (network, len)
    /// pairs in order of appearance.
    pub fn from_rules(rules: impl IntoIterator<Item = RolloutRule>) -> RolloutTable {
        let mut merged: Vec<RolloutRule> = Vec::new();
        for mut rule in rules {
            rule.prefix =
                (u32::from_be_bytes(rule.prefix) & mask_of(rule.len.min(32))).to_be_bytes();
            rule.len = rule.len.min(32);
            match merged
                .iter_mut()
                .find(|r| r.prefix == rule.prefix && r.len == rule.len)
            {
                Some(existing) => existing.arms.extend(rule.arms),
                None => merged.push(rule),
            }
        }
        let lpm = Lpm::new(merged.iter().enumerate().map(|(i, r)| (r.prefix, r.len, i)));
        RolloutTable { rules: merged, lpm }
    }

    /// Parse a rollout file: one `<a.b.c.d>/<len> <percent> <dsl>` row
    /// per line (the DSL runs to end of line), `#`-prefixed comment
    /// lines and blank lines ignored. Arms of the same prefix
    /// accumulate across lines; their percentages must sum to ≤ 100 —
    /// the remainder is the pass-through control arm.
    ///
    /// ```text
    /// # 60/40 A/B between strategy 1 and the window cap, for China
    /// 10.7.0.0/16 60 [TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},)-| \/
    /// 10.7.0.0/16 40 [TCP:flags:SA]-tamper{TCP:window:replace:1}-| \/
    /// ```
    pub fn parse(text: &str) -> Result<RolloutTable, TableParseError> {
        let mut rules: Vec<RolloutRule> = Vec::new();
        let mut sums: Vec<([u8; 4], u8, u32)> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            if raw.trim().is_empty() || raw.trim_start().starts_with('#') {
                continue;
            }
            let mut toks = token_offsets(raw);
            let Some((pcol, prefix_tok)) = toks.next() else {
                continue;
            };
            let (prefix, len) = parse_prefix(prefix_tok, line_no, pcol)?;
            let prefix = (u32::from_be_bytes(prefix) & mask_of(len)).to_be_bytes();
            let Some((ccol, pct_tok)) = toks.next() else {
                return Err(TableParseError::new(
                    line_no,
                    raw.len(),
                    "expected '<a.b.c.d>/<len> <percent> <strategy-dsl>'",
                ));
            };
            let percent: u8 = pct_tok
                .parse()
                .ok()
                .filter(|p| (1..=100).contains(p))
                .ok_or_else(|| {
                    TableParseError::new(
                        line_no,
                        ccol,
                        format!("arm percentage {pct_tok:?} not in 1..=100"),
                    )
                })?;
            let Some((dcol, _)) = toks.next() else {
                return Err(TableParseError::new(
                    line_no,
                    raw.len(),
                    "expected a strategy DSL after the percentage",
                ));
            };
            let dsl = raw[dcol..].trim_end();
            let strategy = geneva::parse_strategy(dsl).map_err(|e| {
                TableParseError::new(
                    line_no,
                    dcol + e.span.start,
                    format!("strategy does not parse: {e}"),
                )
            })?;
            let sum = match sums.iter_mut().find(|(p, l, _)| *p == prefix && *l == len) {
                Some((_, _, sum)) => {
                    *sum += u32::from(percent);
                    *sum
                }
                None => {
                    sums.push((prefix, len, u32::from(percent)));
                    u32::from(percent)
                }
            };
            if sum > 100 {
                return Err(TableParseError::new(
                    line_no,
                    ccol,
                    format!(
                        "arms for {}.{}.{}.{}/{len} sum to {sum}% (max 100)",
                        prefix[0], prefix[1], prefix[2], prefix[3]
                    ),
                ));
            }
            rules.push(RolloutRule {
                prefix,
                len,
                arms: vec![RolloutArm {
                    percent,
                    text: dsl.to_string(),
                    strategy: Arc::new(strategy),
                }],
            });
        }
        Ok(RolloutTable::from_rules(rules))
    }

    /// The degenerate rollout a plain geo table induces: every located
    /// client (100%) gets the top-ranked client-OS-safe strategy for
    /// its country, exactly like [`pick_for_client`].
    pub fn from_geo(entries: &[GeoEntry], protocol: AppProtocol) -> RolloutTable {
        RolloutTable::from_rules(entries.iter().map(|e| {
            RolloutRule {
                prefix: e.prefix,
                len: e.len,
                arms: top_pick(e.country, protocol)
                    .map(|named| {
                        vec![RolloutArm {
                            percent: 100,
                            text: named.text.trim().to_string(),
                            strategy: Arc::new(named.strategy()),
                        }]
                    })
                    .unwrap_or_default(),
            }
        }))
    }

    /// The merged rules, in first-appearance order.
    pub fn rules(&self) -> &[RolloutRule] {
        &self.rules
    }

    /// Number of distinct prefixes.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules are loaded (every client passes through).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The strategy for a client address: longest-prefix match to a
    /// rule, then the deterministic bucket walk over its arms. `None`
    /// means pass through (unlisted client, or the control arm).
    pub fn pick(&self, addr: [u8; 4]) -> Option<Arc<Strategy>> {
        let rule = &self.rules[self.lpm.locate(addr)?];
        let bucket = u32::from(ab_bucket(addr));
        let mut cum = 0u32;
        for arm in &rule.arms {
            cum += u32::from(arm.percent);
            if bucket < cum {
                return Some(Arc::clone(&arm.strategy));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    #[test]
    fn longest_prefix_match_works() {
        let table = GeoTable::new(
            [
                GeoEntry {
                    prefix: [10, 7, 0, 0],
                    len: 16,
                    country: Country::China,
                },
                GeoEntry {
                    prefix: [10, 7, 9, 0],
                    len: 24,
                    country: Country::Iran, // more specific override
                },
            ]
            .into_iter()
            .chain([
                GeoEntry {
                    prefix: [10, 91, 0, 0],
                    len: 16,
                    country: Country::India,
                },
                GeoEntry {
                    prefix: [10, 77, 0, 0],
                    len: 16,
                    country: Country::Kazakhstan,
                },
            ]),
        );
        assert_eq!(table.locate([10, 7, 1, 1]), Some(Country::China));
        assert_eq!(table.locate([10, 7, 9, 5]), Some(Country::Iran));
        assert_eq!(table.locate([8, 8, 8, 8]), None);
    }

    #[test]
    fn nested_prefixes_resolve_most_specific_first() {
        // A /8 of one country containing a /16 of another, containing
        // a /24 of a third — the LPM ladder must stop at the longest
        // covering prefix, whatever order the rows arrive in.
        let rows = vec![
            GeoEntry {
                prefix: [10, 50, 60, 0],
                len: 24,
                country: Country::Kazakhstan,
            },
            GeoEntry {
                prefix: [10, 0, 0, 0],
                len: 8,
                country: Country::China,
            },
            GeoEntry {
                prefix: [10, 50, 0, 0],
                len: 16,
                country: Country::Iran,
            },
        ];
        for permutation in 0..3 {
            let mut rotated = rows.clone();
            rotated.rotate_left(permutation);
            let table = GeoTable::new(rotated);
            assert_eq!(table.locate([10, 1, 2, 3]), Some(Country::China));
            assert_eq!(table.locate([10, 50, 1, 1]), Some(Country::Iran));
            assert_eq!(table.locate([10, 50, 60, 9]), Some(Country::Kazakhstan));
            assert_eq!(table.locate([11, 0, 0, 1]), None);
        }
    }

    #[test]
    fn unindexed_locate_agrees_with_table_and_handles_edges() {
        let rows = vec![
            GeoEntry {
                prefix: [0, 0, 0, 0],
                len: 0, // default route: covers everything
                country: Country::India,
            },
            GeoEntry {
                prefix: [10, 7, 0, 0],
                len: 16,
                country: Country::China,
            },
            // Unmasked host bits must be normalized away.
            GeoEntry {
                prefix: [10, 8, 3, 7],
                len: 16,
                country: Country::Iran,
            },
        ];
        let table = GeoTable::new(rows.clone());
        for addr in [[10, 7, 1, 1], [10, 8, 200, 200], [1, 2, 3, 4]] {
            assert_eq!(table.locate(addr), locate(addr, &rows), "{addr:?}");
        }
        assert_eq!(table.locate([10, 7, 255, 255]), Some(Country::China));
        assert_eq!(table.locate([10, 8, 0, 1]), Some(Country::Iran));
        assert_eq!(table.locate([99, 99, 99, 99]), Some(Country::India));
        // Duplicate (network, length): the later row wins.
        let dup = GeoTable::new(vec![
            GeoEntry {
                prefix: [10, 7, 0, 0],
                len: 16,
                country: Country::China,
            },
            GeoEntry {
                prefix: [10, 7, 0, 0],
                len: 16,
                country: Country::Iran,
            },
        ]);
        assert_eq!(dup.len(), 1);
        assert_eq!(dup.locate([10, 7, 0, 1]), Some(Country::Iran));
    }

    #[test]
    fn recommendations_follow_table2() {
        let ftp = recommend(Country::China, AppProtocol::Ftp);
        assert_eq!(ftp[0].id, 5, "Strategy 5 leads for FTP (97%)");
        let smtp = recommend(Country::China, AppProtocol::Smtp);
        assert_eq!(smtp[0].id, 8, "window reduction leads for SMTP (100%)");
        assert!(recommend(Country::India, AppProtocol::Ftp).is_empty());
        assert_eq!(recommend(Country::Kazakhstan, AppProtocol::Http).len(), 4);
    }

    #[test]
    fn picks_are_client_os_safe() {
        let table = demo_geo_table();
        // China FTP's top pick is Strategy 5 — which breaks Windows —
        // so the deployment helper returns the checksum-fixed variant.
        let pick = pick_for_client([10, 7, 3, 3], AppProtocol::Ftp, &table).unwrap();
        assert_eq!(pick.id, 5);
        assert!(pick.name.contains("chksum-fixed"), "{}", pick.name);
        // Unknown client: deploy nothing.
        assert!(pick_for_client([9, 9, 9, 9], AppProtocol::Http, &table).is_none());
    }

    #[test]
    fn geo_file_round_trips_and_ties_break_to_the_later_row() {
        let text = "\
# demo table
10.7.0.0/16  china
10.7.9.0/24  iran    # carve-out
10.7.9.0/24  india
0.0.0.0/0    kazakhstan
";
        let rows = parse_geo_file(text).unwrap();
        assert_eq!(rows.len(), 4);
        let table = GeoTable::new(rows);
        // Longest prefix wins; among identical (network, len) rows the
        // later one wins — the /24 appears twice, india is last.
        assert_eq!(table.locate([10, 7, 1, 1]), Some(Country::China));
        assert_eq!(table.locate([10, 7, 9, 9]), Some(Country::India));
        assert_eq!(table.locate([8, 8, 8, 8]), Some(Country::Kazakhstan));
        assert_eq!(table.len(), 3, "duplicate (network, len) deduplicates");
    }

    #[test]
    fn geo_file_errors_carry_line_and_column_spans() {
        // Unknown country: line 2, column of the country token.
        let err = parse_geo_file("10.7.0.0/16 china\n10.8.0.0/16 wonderland\n").unwrap_err();
        assert_eq!((err.line, err.col), (2, 13), "{err}");
        assert!(err.msg.contains("wonderland"), "{err}");
        // Prefix length out of range: column of the prefix token.
        let err = parse_geo_file("  10.7.0.0/33 china\n").unwrap_err();
        assert_eq!((err.line, err.col), (1, 3), "{err}");
        // Missing country.
        let err = parse_geo_file("10.7.0.0/16\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.msg.contains("expected"), "{err}");
        // Trailing junk.
        let err = parse_geo_file("10.7.0.0/16 china extra\n").unwrap_err();
        assert_eq!((err.line, err.col), (1, 19), "{err}");
        assert!(err.to_string().starts_with("line 1:19"), "{err}");
    }

    #[test]
    fn rollout_split_is_deterministic_and_respects_percentages() {
        let text = "\
# 60/40 split plus an uncovered control remainder on another prefix
10.7.0.0/16 60 [TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},)-| \\/
10.7.0.0/16 40 [TCP:flags:SA]-tamper{TCP:window:replace:1}-| \\/
10.91.0.0/16 25 [TCP:flags:SA]-tamper{TCP:window:replace:1}-| \\/
";
        let table = RolloutTable::parse(text).unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(table.rules()[0].arms.len(), 2);
        // Full coverage: every China client gets one of the two arms,
        // per its deterministic bucket.
        let mut arm_counts = [0usize; 2];
        for host in 0..=255u8 {
            let addr = [10, 7, 3, host];
            let picked = table.pick(addr).expect("100% coverage");
            let bucket = ab_bucket(addr);
            let expect = &table.rules()[0].arms[usize::from(bucket >= 60)];
            assert_eq!(picked, expect.strategy, "bucket {bucket}");
            arm_counts[usize::from(bucket >= 60)] += 1;
        }
        assert!(arm_counts[0] > arm_counts[1], "60% arm should dominate");
        assert!(arm_counts[1] > 0, "40% arm should be populated");
        // Partial coverage: ~25% of India clients get the arm, the
        // rest are the pass-through control group.
        let covered = (0..=255u8)
            .filter(|h| table.pick([10, 91, 1, *h]).is_some())
            .count();
        assert!((32..96).contains(&covered), "covered {covered} of 256");
        // Unlisted prefix: always pass-through.
        assert!(table.pick([172, 16, 0, 1]).is_none());
        // The split is a pure function of the address.
        assert_eq!(
            table.pick([10, 7, 3, 7]),
            RolloutTable::parse(text).unwrap().pick([10, 7, 3, 7])
        );
    }

    #[test]
    fn rollout_parse_errors_are_spanned() {
        // Oversubscribed prefix: pinned to the line that overflowed.
        let err = RolloutTable::parse("10.7.0.0/16 60 \\/\n10.7.0.0/16 50 \\/\n").unwrap_err();
        assert_eq!(err.line, 2, "{err}");
        assert!(err.msg.contains("110%"), "{err}");
        // Bad percentage.
        let err = RolloutTable::parse("10.7.0.0/16 0 \\/\n").unwrap_err();
        assert!(err.msg.contains("percentage"), "{err}");
        // Strategy DSL error: column lands inside the DSL.
        let err = RolloutTable::parse("10.7.0.0/16 50 [TCP:flags:SA]-oops-| \\/\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.col >= 16, "span should index into the DSL: {err}");
    }

    #[test]
    fn geo_derived_rollout_matches_pick_for_client() {
        let entries = demo_geo_entries();
        let rollout = RolloutTable::from_geo(&entries, AppProtocol::Http);
        let table = GeoTable::new(entries);
        for addr in [
            [10, 7, 1, 1],
            [10, 91, 2, 2],
            [10, 98, 3, 3],
            [10, 77, 4, 4],
            [9, 9, 9, 9],
        ] {
            let via_rollout = rollout.pick(addr);
            let via_pick = pick_for_client(addr, AppProtocol::Http, &table);
            assert_eq!(
                via_rollout.map(|s| s.to_string()),
                via_pick.map(|n| n.strategy().to_string()),
                "{addr:?}"
            );
        }
    }

    #[test]
    fn recommended_strategies_actually_evade_in_simulation() {
        // Close the loop: the top recommendation for every censored
        // (country, protocol) pair beats that censor more often than
        // no evasion does.
        use crate::rates::success_rate;
        use crate::trial::TrialConfig;
        for country in Country::all() {
            for proto in country.censored_protocols() {
                let Some(top) = recommend(country, *proto).into_iter().next() else {
                    continue;
                };
                let evading = TrialConfig::new(country, *proto, top.strategy(), 0);
                let baseline = TrialConfig::new(country, *proto, geneva::Strategy::identity(), 0);
                let with = success_rate(&evading, 60, 9).rate();
                let without = success_rate(&baseline, 60, 9).rate();
                assert!(
                    with > without + 0.2,
                    "{country}/{proto}: {with} !> {without} (strategy {})",
                    top.id
                );
            }
        }
    }
}
