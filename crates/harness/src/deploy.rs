//! §8 deployment considerations: which strategy should a server apply
//! to which client?
//!
//! "In deployment, the server must determine which strategy to use on
//! a per-client basis … based only on the client's SYN packet.
//! Coarse-grained, country-level IP geolocation may suffice for
//! nation-states that exhibit mostly consistent censorship behavior
//! throughout their borders (like China)."
//!
//! This module is the library-shaped version of that paragraph: a tiny
//! prefix-based geolocation table (documentation-prefix ranges stand in
//! for a GeoIP database) and a per-(country, protocol) strategy ranking
//! derived from the paper's Table 2.

use appproto::AppProtocol;
use censor::Country;
use geneva::library::{self, NamedStrategy};

/// A (prefix, mask-length, country) entry — a toy GeoIP row.
#[derive(Debug, Clone, Copy)]
pub struct GeoEntry {
    /// Network address.
    pub prefix: [u8; 4],
    /// Prefix length in bits.
    pub len: u8,
    /// Mapped country.
    pub country: Country,
}

/// The built-in demonstration table (documentation ranges; a real
/// deployment would load MaxMind or similar).
pub fn demo_geo_table() -> GeoTable {
    GeoTable::new(vec![
        GeoEntry {
            prefix: [10, 7, 0, 0],
            len: 16,
            country: Country::China,
        },
        GeoEntry {
            prefix: [10, 91, 0, 0],
            len: 16,
            country: Country::India,
        },
        GeoEntry {
            prefix: [10, 98, 0, 0],
            len: 16,
            country: Country::Iran,
        },
        GeoEntry {
            prefix: [10, 77, 0, 0],
            len: 16,
            country: Country::Kazakhstan,
        },
    ])
}

fn mask_of(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - u32::from(len.min(32)))
    }
}

/// A geolocation table with sorted-table longest-prefix-match lookup.
///
/// Entries are normalized (network masked to its prefix length) and
/// grouped by prefix length, longest first; each group is sorted by
/// network address. A lookup binary-searches one group per distinct
/// length and returns on the first (i.e. longest) hit — `O(L log n)`
/// for `L` distinct prefix lengths, instead of the old linear scan
/// over every row per packet. On the data-plane fast path this runs
/// once per flow (first SYN), over tables that in a real deployment
/// hold hundreds of thousands of rows.
#[derive(Debug, Clone, Default)]
pub struct GeoTable {
    /// `(masked network, prefix length, country)`, sorted by length
    /// descending then network ascending; deduplicated on
    /// `(network, length)` with later rows overriding earlier ones.
    entries: Vec<(u32, u8, Country)>,
    /// Contiguous `entries` run per distinct prefix length:
    /// `(len, start, end)`, longest length first.
    runs: Vec<(u8, usize, usize)>,
}

impl GeoTable {
    /// Build the lookup structure from arbitrary-order rows.
    pub fn new(rows: impl IntoIterator<Item = GeoEntry>) -> GeoTable {
        let mut entries: Vec<(u32, u8, Country)> = rows
            .into_iter()
            .map(|e| {
                let len = e.len.min(32);
                (u32::from_be_bytes(e.prefix) & mask_of(len), len, e.country)
            })
            .collect();
        // Stable sort + keep-last dedup: rows later in the input
        // override earlier duplicates of the same (network, length).
        entries.sort_by_key(|&(net, len, _)| (std::cmp::Reverse(len), net));
        let mut deduped: Vec<(u32, u8, Country)> = Vec::with_capacity(entries.len());
        for entry in entries {
            match deduped.last_mut() {
                Some(last) if last.0 == entry.0 && last.1 == entry.1 => *last = entry,
                _ => deduped.push(entry),
            }
        }
        let mut runs = Vec::new();
        let mut start = 0;
        while start < deduped.len() {
            let len = deduped[start].1;
            let end = start + deduped[start..].iter().take_while(|e| e.1 == len).count();
            runs.push((len, start, end));
            start = end;
        }
        GeoTable {
            entries: deduped,
            runs,
        }
    }

    /// Number of (deduplicated) rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Longest-prefix-match `addr`: the country of the most specific
    /// covering prefix, or `None` when nothing covers it.
    pub fn locate(&self, addr: [u8; 4]) -> Option<Country> {
        let ip = u32::from_be_bytes(addr);
        for &(len, start, end) in &self.runs {
            let masked = ip & mask_of(len);
            if let Ok(i) = self.entries[start..end].binary_search_by_key(&masked, |e| e.0) {
                return Some(self.entries[start + i].2);
            }
        }
        None
    }
}

/// Longest-prefix-match a client address against unindexed rows
/// (convenience; builds the sorted table per call — hot paths should
/// hold a [`GeoTable`]).
pub fn locate(addr: [u8; 4], table: &[GeoEntry]) -> Option<Country> {
    GeoTable::new(table.iter().copied()).locate(addr)
}

/// The paper's Table-2-derived ranking: the best strategies for a
/// (country, protocol) pair, most effective first. Empty when the
/// country doesn't censor the protocol (deploy nothing).
pub fn recommend(country: Country, protocol: AppProtocol) -> Vec<NamedStrategy> {
    use AppProtocol as P;
    let ids: &[u32] = match (country, protocol) {
        // China, Table 2 column order by success rate:
        (Country::China, P::DnsTcp) => &[1, 7, 6, 2],
        (Country::China, P::Ftp) => &[5, 7, 3, 6, 1],
        (Country::China, P::Http) => &[1, 2, 7, 6],
        (Country::China, P::Https) => &[2, 6],
        (Country::China, P::Smtp) => &[8, 1, 7],
        (Country::India, P::Http) => &[8],
        (Country::Iran, P::Http) | (Country::Iran, P::Https) => &[8],
        (Country::Kazakhstan, P::Http) => &[8, 9, 10, 11],
        _ => &[],
    };
    ids.iter()
        .map(|id| {
            library::server_side()
                .into_iter()
                .find(|s| s.id == *id)
                .expect("ranked ids exist")
        })
        .collect()
}

/// End-to-end pick: from a client SYN's source address to the strategy
/// a deployment should apply (client-OS-safe choices only: strategies
/// 5/9/10 are swapped for their §7 checksum-fixed variants, since the
/// server cannot know the client OS from a SYN).
pub fn pick_for_client(
    client_addr: [u8; 4],
    protocol: AppProtocol,
    table: &GeoTable,
) -> Option<NamedStrategy> {
    let country = table.locate(client_addr)?;
    let ranked = recommend(country, protocol);
    if let Some(named) = ranked.into_iter().next() {
        if let Some(fixed) = library::client_compat_fix(named.id) {
            return Some(fixed);
        }
        return Some(named);
    }
    None
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    #[test]
    fn longest_prefix_match_works() {
        let table = GeoTable::new(
            [
                GeoEntry {
                    prefix: [10, 7, 0, 0],
                    len: 16,
                    country: Country::China,
                },
                GeoEntry {
                    prefix: [10, 7, 9, 0],
                    len: 24,
                    country: Country::Iran, // more specific override
                },
            ]
            .into_iter()
            .chain([
                GeoEntry {
                    prefix: [10, 91, 0, 0],
                    len: 16,
                    country: Country::India,
                },
                GeoEntry {
                    prefix: [10, 77, 0, 0],
                    len: 16,
                    country: Country::Kazakhstan,
                },
            ]),
        );
        assert_eq!(table.locate([10, 7, 1, 1]), Some(Country::China));
        assert_eq!(table.locate([10, 7, 9, 5]), Some(Country::Iran));
        assert_eq!(table.locate([8, 8, 8, 8]), None);
    }

    #[test]
    fn nested_prefixes_resolve_most_specific_first() {
        // A /8 of one country containing a /16 of another, containing
        // a /24 of a third — the LPM ladder must stop at the longest
        // covering prefix, whatever order the rows arrive in.
        let rows = vec![
            GeoEntry {
                prefix: [10, 50, 60, 0],
                len: 24,
                country: Country::Kazakhstan,
            },
            GeoEntry {
                prefix: [10, 0, 0, 0],
                len: 8,
                country: Country::China,
            },
            GeoEntry {
                prefix: [10, 50, 0, 0],
                len: 16,
                country: Country::Iran,
            },
        ];
        for permutation in 0..3 {
            let mut rotated = rows.clone();
            rotated.rotate_left(permutation);
            let table = GeoTable::new(rotated);
            assert_eq!(table.locate([10, 1, 2, 3]), Some(Country::China));
            assert_eq!(table.locate([10, 50, 1, 1]), Some(Country::Iran));
            assert_eq!(table.locate([10, 50, 60, 9]), Some(Country::Kazakhstan));
            assert_eq!(table.locate([11, 0, 0, 1]), None);
        }
    }

    #[test]
    fn unindexed_locate_agrees_with_table_and_handles_edges() {
        let rows = vec![
            GeoEntry {
                prefix: [0, 0, 0, 0],
                len: 0, // default route: covers everything
                country: Country::India,
            },
            GeoEntry {
                prefix: [10, 7, 0, 0],
                len: 16,
                country: Country::China,
            },
            // Unmasked host bits must be normalized away.
            GeoEntry {
                prefix: [10, 8, 3, 7],
                len: 16,
                country: Country::Iran,
            },
        ];
        let table = GeoTable::new(rows.clone());
        for addr in [[10, 7, 1, 1], [10, 8, 200, 200], [1, 2, 3, 4]] {
            assert_eq!(table.locate(addr), locate(addr, &rows), "{addr:?}");
        }
        assert_eq!(table.locate([10, 7, 255, 255]), Some(Country::China));
        assert_eq!(table.locate([10, 8, 0, 1]), Some(Country::Iran));
        assert_eq!(table.locate([99, 99, 99, 99]), Some(Country::India));
        // Duplicate (network, length): the later row wins.
        let dup = GeoTable::new(vec![
            GeoEntry {
                prefix: [10, 7, 0, 0],
                len: 16,
                country: Country::China,
            },
            GeoEntry {
                prefix: [10, 7, 0, 0],
                len: 16,
                country: Country::Iran,
            },
        ]);
        assert_eq!(dup.len(), 1);
        assert_eq!(dup.locate([10, 7, 0, 1]), Some(Country::Iran));
    }

    #[test]
    fn recommendations_follow_table2() {
        let ftp = recommend(Country::China, AppProtocol::Ftp);
        assert_eq!(ftp[0].id, 5, "Strategy 5 leads for FTP (97%)");
        let smtp = recommend(Country::China, AppProtocol::Smtp);
        assert_eq!(smtp[0].id, 8, "window reduction leads for SMTP (100%)");
        assert!(recommend(Country::India, AppProtocol::Ftp).is_empty());
        assert_eq!(recommend(Country::Kazakhstan, AppProtocol::Http).len(), 4);
    }

    #[test]
    fn picks_are_client_os_safe() {
        let table = demo_geo_table();
        // China FTP's top pick is Strategy 5 — which breaks Windows —
        // so the deployment helper returns the checksum-fixed variant.
        let pick = pick_for_client([10, 7, 3, 3], AppProtocol::Ftp, &table).unwrap();
        assert_eq!(pick.id, 5);
        assert!(pick.name.contains("chksum-fixed"), "{}", pick.name);
        // Unknown client: deploy nothing.
        assert!(pick_for_client([9, 9, 9, 9], AppProtocol::Http, &table).is_none());
    }

    #[test]
    fn recommended_strategies_actually_evade_in_simulation() {
        // Close the loop: the top recommendation for every censored
        // (country, protocol) pair beats that censor more often than
        // no evasion does.
        use crate::rates::success_rate;
        use crate::trial::TrialConfig;
        for country in Country::all() {
            for proto in country.censored_protocols() {
                let Some(top) = recommend(country, *proto).into_iter().next() else {
                    continue;
                };
                let evading = TrialConfig::new(country, *proto, top.strategy(), 0);
                let baseline = TrialConfig::new(country, *proto, geneva::Strategy::identity(), 0);
                let with = success_rate(&evading, 60, 9).rate();
                let without = success_rate(&baseline, 60, 9).rate();
                assert!(
                    with > without + 0.2,
                    "{country}/{proto}: {with} !> {without} (strategy {})",
                    top.id
                );
            }
        }
    }
}
