//! §8 deployment considerations: which strategy should a server apply
//! to which client?
//!
//! "In deployment, the server must determine which strategy to use on
//! a per-client basis … based only on the client's SYN packet.
//! Coarse-grained, country-level IP geolocation may suffice for
//! nation-states that exhibit mostly consistent censorship behavior
//! throughout their borders (like China)."
//!
//! This module is the library-shaped version of that paragraph: a tiny
//! prefix-based geolocation table (documentation-prefix ranges stand in
//! for a GeoIP database) and a per-(country, protocol) strategy ranking
//! derived from the paper's Table 2.

use appproto::AppProtocol;
use censor::Country;
use geneva::library::{self, NamedStrategy};

/// A (prefix, mask-length, country) entry — a toy GeoIP row.
#[derive(Debug, Clone, Copy)]
pub struct GeoEntry {
    /// Network address.
    pub prefix: [u8; 4],
    /// Prefix length in bits.
    pub len: u8,
    /// Mapped country.
    pub country: Country,
}

/// The built-in demonstration table (documentation ranges; a real
/// deployment would load MaxMind or similar).
pub fn demo_geo_table() -> Vec<GeoEntry> {
    vec![
        GeoEntry {
            prefix: [10, 7, 0, 0],
            len: 16,
            country: Country::China,
        },
        GeoEntry {
            prefix: [10, 91, 0, 0],
            len: 16,
            country: Country::India,
        },
        GeoEntry {
            prefix: [10, 98, 0, 0],
            len: 16,
            country: Country::Iran,
        },
        GeoEntry {
            prefix: [10, 77, 0, 0],
            len: 16,
            country: Country::Kazakhstan,
        },
    ]
}

/// Longest-prefix-match a client address against a geo table.
pub fn locate(addr: [u8; 4], table: &[GeoEntry]) -> Option<Country> {
    let ip = u32::from_be_bytes(addr);
    table
        .iter()
        .filter(|e| {
            let net = u32::from_be_bytes(e.prefix);
            let mask = if e.len == 0 {
                0
            } else {
                u32::MAX << (32 - e.len)
            };
            ip & mask == net & mask
        })
        .max_by_key(|e| e.len)
        .map(|e| e.country)
}

/// The paper's Table-2-derived ranking: the best strategies for a
/// (country, protocol) pair, most effective first. Empty when the
/// country doesn't censor the protocol (deploy nothing).
pub fn recommend(country: Country, protocol: AppProtocol) -> Vec<NamedStrategy> {
    use AppProtocol as P;
    let ids: &[u32] = match (country, protocol) {
        // China, Table 2 column order by success rate:
        (Country::China, P::DnsTcp) => &[1, 7, 6, 2],
        (Country::China, P::Ftp) => &[5, 7, 3, 6, 1],
        (Country::China, P::Http) => &[1, 2, 7, 6],
        (Country::China, P::Https) => &[2, 6],
        (Country::China, P::Smtp) => &[8, 1, 7],
        (Country::India, P::Http) => &[8],
        (Country::Iran, P::Http) | (Country::Iran, P::Https) => &[8],
        (Country::Kazakhstan, P::Http) => &[8, 9, 10, 11],
        _ => &[],
    };
    ids.iter()
        .map(|id| {
            library::server_side()
                .into_iter()
                .find(|s| s.id == *id)
                .expect("ranked ids exist")
        })
        .collect()
}

/// End-to-end pick: from a client SYN's source address to the strategy
/// a deployment should apply (client-OS-safe choices only: strategies
/// 5/9/10 are swapped for their §7 checksum-fixed variants, since the
/// server cannot know the client OS from a SYN).
pub fn pick_for_client(
    client_addr: [u8; 4],
    protocol: AppProtocol,
    table: &[GeoEntry],
) -> Option<NamedStrategy> {
    let country = locate(client_addr, table)?;
    let ranked = recommend(country, protocol);
    if let Some(named) = ranked.into_iter().next() {
        if let Some(fixed) = library::client_compat_fix(named.id) {
            return Some(fixed);
        }
        return Some(named);
    }
    None
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    #[test]
    fn longest_prefix_match_works() {
        let mut table = demo_geo_table();
        table.push(GeoEntry {
            prefix: [10, 7, 9, 0],
            len: 24,
            country: Country::Iran, // more specific override
        });
        assert_eq!(locate([10, 7, 1, 1], &table), Some(Country::China));
        assert_eq!(locate([10, 7, 9, 5], &table), Some(Country::Iran));
        assert_eq!(locate([8, 8, 8, 8], &table), None);
    }

    #[test]
    fn recommendations_follow_table2() {
        let ftp = recommend(Country::China, AppProtocol::Ftp);
        assert_eq!(ftp[0].id, 5, "Strategy 5 leads for FTP (97%)");
        let smtp = recommend(Country::China, AppProtocol::Smtp);
        assert_eq!(smtp[0].id, 8, "window reduction leads for SMTP (100%)");
        assert!(recommend(Country::India, AppProtocol::Ftp).is_empty());
        assert_eq!(recommend(Country::Kazakhstan, AppProtocol::Http).len(), 4);
    }

    #[test]
    fn picks_are_client_os_safe() {
        let table = demo_geo_table();
        // China FTP's top pick is Strategy 5 — which breaks Windows —
        // so the deployment helper returns the checksum-fixed variant.
        let pick = pick_for_client([10, 7, 3, 3], AppProtocol::Ftp, &table).unwrap();
        assert_eq!(pick.id, 5);
        assert!(pick.name.contains("chksum-fixed"), "{}", pick.name);
        // Unknown client: deploy nothing.
        assert!(pick_for_client([9, 9, 9, 9], AppProtocol::Http, &table).is_none());
    }

    #[test]
    fn recommended_strategies_actually_evade_in_simulation() {
        // Close the loop: the top recommendation for every censored
        // (country, protocol) pair beats that censor more often than
        // no evasion does.
        use crate::rates::success_rate;
        use crate::trial::TrialConfig;
        for country in Country::all() {
            for proto in country.censored_protocols() {
                let Some(top) = recommend(country, *proto).into_iter().next() else {
                    continue;
                };
                let evading = TrialConfig::new(country, *proto, top.strategy(), 0);
                let baseline = TrialConfig::new(country, *proto, geneva::Strategy::identity(), 0);
                let with = success_rate(&evading, 60, 9).rate();
                let without = success_rate(&baseline, 60, 9).rate();
                assert!(
                    with > without + 0.2,
                    "{country}/{proto}: {with} !> {without} (strategy {})",
                    top.id
                );
            }
        }
    }
}
