#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
//! Property tests for the Geneva DSL and engine.
//!
//! Invariants:
//! 1. `Display` → `parse_strategy` is the identity on arbitrary ASTs
//!    (canonical values only — the parser normalizes `Str("")` ⇒
//!    `Empty`, which the generator respects).
//! 2. The engine never panics on any (strategy, packet) pair and emits
//!    at most 2^depth packets per input packet.
//! 3. Packets the engine emits are either raw-faithful (derived-field
//!    tampering) or finalized (everything else) — i.e. always
//!    serializable.

use geneva::ast::{Action, StrategyPart, TamperMode, Trigger};
use geneva::{parse_strategy, Engine};
use packet::field::{FieldRef, FieldValue};
use packet::{Packet, TcpFlags};
use proptest::prelude::*;

const FIELDS: &[&str] = &[
    "TCP:flags",
    "TCP:seq",
    "TCP:ack",
    "TCP:window",
    "TCP:chksum",
    "TCP:load",
    "TCP:urgptr",
    "TCP:options-wscale",
    "TCP:options-mss",
    "IP:ttl",
    "IP:tos",
];

fn arb_value(field: &'static str) -> BoxedStrategy<FieldValue> {
    match field {
        "TCP:flags" => prop_oneof![
            Just(FieldValue::Empty),
            prop::sample::select(vec!["S", "SA", "R", "RA", "F", "A", "PA"])
                .prop_map(|s| FieldValue::Str(s.to_string())),
        ]
        .boxed(),
        "TCP:load" => prop_oneof![
            Just(FieldValue::Empty),
            Just(FieldValue::Str("GET / HTTP1.".to_string())),
            prop::collection::vec(any::<u8>(), 1..6).prop_map(FieldValue::Bytes),
        ]
        .boxed(),
        "TCP:options-wscale" | "TCP:options-mss" => prop_oneof![
            Just(FieldValue::Empty),
            (1u64..1400).prop_map(FieldValue::Num),
        ]
        .boxed(),
        _ => (0u64..65536).prop_map(FieldValue::Num).boxed(),
    }
}

fn arb_tamper(next: BoxedStrategy<Action>) -> BoxedStrategy<Action> {
    prop::sample::select(FIELDS.to_vec())
        .prop_flat_map(move |field| {
            let next = next.clone();
            prop_oneof![
                Just(TamperMode::Corrupt),
                arb_value(field).prop_map(TamperMode::Replace),
            ]
            .prop_flat_map(move |mode| {
                let field = field;
                let mode = mode.clone();
                next.clone().prop_map(move |n| Action::Tamper {
                    field: FieldRef::parse(field).expect("valid"),
                    mode: mode.clone(),
                    next: Box::new(n),
                })
            })
        })
        .boxed()
}

fn arb_action() -> impl Strategy<Value = Action> {
    let leaf = prop_oneof![4 => Just(Action::Send), 1 => Just(Action::Drop)].boxed();
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            arb_tamper(inner.clone()),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Action::Duplicate(Box::new(a), Box::new(b))),
            (1usize..20, any::<bool>(), inner.clone(), inner).prop_map(
                |(offset, in_order, a, b)| Action::Fragment {
                    proto: packet::Proto::Tcp,
                    offset,
                    in_order,
                    first: Box::new(a),
                    second: Box::new(b),
                }
            ),
        ]
        .boxed()
    })
}

fn arb_strategy() -> impl Strategy<Value = geneva::Strategy> {
    arb_action().prop_map(|action| geneva::Strategy {
        outbound: vec![StrategyPart {
            trigger: Trigger::tcp_flags("SA"),
            action,
        }],
        inbound: vec![],
    })
}

fn syn_ack() -> Packet {
    let mut p = Packet::tcp(
        [20, 0, 0, 9],
        80,
        [10, 0, 0, 1],
        40000,
        TcpFlags::SYN_ACK,
        9000,
        1001,
        vec![],
    );
    p.tcp_header_mut().unwrap().options = vec![
        packet::TcpOption::Mss(1460),
        packet::TcpOption::WindowScale(7),
    ];
    p.finalize();
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn display_parse_round_trip(strategy in arb_strategy()) {
        let text = strategy.to_string();
        let reparsed = parse_strategy(&text)
            .unwrap_or_else(|e| panic!("{text}: {e}"));
        prop_assert_eq!(reparsed, strategy);
    }

    #[test]
    fn engine_never_panics_and_bounds_output(strategy in arb_strategy(), seed in any::<u64>()) {
        let mut engine = Engine::new(strategy, seed);
        let out = engine.apply_outbound(&syn_ack());
        // Depth ≤ 3 binary tree + fragments: ≤ 2^4 leaves is generous.
        prop_assert!(out.len() <= 16, "emitted {}", out.len());
        // Everything emitted can hit the wire.
        for pkt in &out {
            let bytes = pkt.serialize_raw();
            prop_assert!(bytes.len() >= 40);
        }
    }

    #[test]
    fn non_matching_packets_pass_untouched(strategy in arb_strategy(), seed in any::<u64>()) {
        let mut engine = Engine::new(strategy, seed);
        let mut data = Packet::tcp([1; 4], 1, [2; 4], 2, TcpFlags::PSH_ACK, 5, 6, b"hi".to_vec());
        data.finalize();
        let out = engine.apply_outbound(&data);
        prop_assert_eq!(out, vec![data]);
    }

    #[test]
    fn identity_strategy_is_identity(seed in any::<u64>()) {
        let mut engine = Engine::new(geneva::Strategy::identity(), seed);
        let pkt = syn_ack();
        prop_assert_eq!(engine.apply_outbound(&pkt), vec![pkt]);
    }
}

// Invariant 4 (added with the incremental-checksum fast path): for the
// fields `engine::tamper` may patch incrementally (IP:ttl, TCP:seq,
// TCP:flags), its output is structurally and byte-identical to the
// reference slow path — `FieldRef::set` followed by a full
// `Packet::finalize` — on valid packets, on packets whose checksums
// were deliberately broken (insertion packets), and on packets with
// TCP options. The fast path must be an invisible optimization.
proptest! {
    #[test]
    fn tamper_fast_path_matches_set_plus_finalize(
        flags in any::<u8>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        payload in prop::collection::vec(any::<u8>(), 0..200),
        with_options in any::<bool>(),
        break_ip_ck in any::<bool>(),
        break_tcp_ck in any::<u16>(),
        which in 0usize..3,
        raw in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let mut pkt = Packet::tcp(
            [20, 0, 0, 9],
            80,
            [10, 0, 0, 1],
            40000,
            TcpFlags(flags),
            seq,
            ack,
            payload,
        );
        if with_options {
            pkt.tcp_header_mut().unwrap().options =
                vec![packet::TcpOption::Mss(1460), packet::TcpOption::Nop];
        }
        pkt.finalize();
        // Insertion-style packets carry deliberately broken checksums;
        // the tamper semantics (finalize repairs them) must not change.
        if break_ip_ck {
            pkt.ip.checksum ^= 0x0F0F;
        }
        pkt.tcp_header_mut().unwrap().checksum ^= break_tcp_ck;

        let (name, value) = match which {
            0 => ("IP:ttl", FieldValue::Num(raw & 0xFF)),
            1 => ("TCP:seq", FieldValue::Num(raw & 0xFFFF_FFFF)),
            _ => (
                "TCP:flags",
                FieldValue::Str(TcpFlags(raw as u8).to_geneva()),
            ),
        };
        let field = FieldRef::parse(name).unwrap();

        let mut reference = pkt.clone();
        let _ = field.set(&mut reference, &value);
        reference.finalize();

        let fast = geneva::engine::tamper(
            pkt,
            &field,
            &TamperMode::Replace(value),
            seed,
        );
        prop_assert_eq!(&fast, &reference, "structural divergence on {}", name);
        prop_assert_eq!(fast.serialize(), reference.serialize());
    }
}
