//! The canned strategy library.
//!
//! * [`server_side`] — the paper's 11 server-side strategies (§5),
//!   verbatim in the DSL, with their Table-2 names.
//! * [`client_compat_fix`] — the §7 variants of Strategies 5/9/10 that
//!   work on Windows/macOS: every payload-bearing packet is re-sent as
//!   an *insertion packet* (corrupted TCP checksum) ahead of the
//!   genuine SYN+ACK, so no client stack ever processes a SYN+ACK
//!   payload while censors still do.
//! * [`client_side`] — representative client-side strategies from
//!   prior work, and [`server_side_analogs`] — the §3 translation that
//!   moves each insertion packet to the server, before or after the
//!   SYN+ACK. The paper's negative result: none of these analogs work.

use crate::ast::Strategy;
use crate::parser::parse_strategy;

/// A strategy with its paper identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NamedStrategy {
    /// Paper number, 1–11 (0 = no evasion).
    pub id: u32,
    /// Table-2 description.
    pub name: &'static str,
    /// DSL text.
    pub text: &'static str,
}

impl NamedStrategy {
    /// Parse the DSL text (library strings are tested to parse).
    pub fn strategy(&self) -> Strategy {
        parse_strategy(self.text).expect("library strategy parses")
    }
}

/// Strategy 1 — Simultaneous Open, Injected RST (China).
pub const STRATEGY_1: NamedStrategy = NamedStrategy {
    id: 1,
    name: "Sim. Open, Injected RST",
    text:
        "[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},tamper{TCP:flags:replace:S})-| \\/ ",
};

/// Strategy 2 — Simultaneous Open, Injected Load (China).
pub const STRATEGY_2: NamedStrategy = NamedStrategy {
    id: 2,
    name: "Sim. Open, Injected Load",
    text:
        "[TCP:flags:SA]-tamper{TCP:flags:replace:S}(duplicate(,tamper{TCP:load:corrupt}),)-| \\/ ",
};

/// Strategy 3 — Corrupted ACK, Simultaneous Open (China).
pub const STRATEGY_3: NamedStrategy = NamedStrategy {
    id: 3,
    name: "Corrupt ACK, Sim. Open",
    text: "[TCP:flags:SA]-duplicate(tamper{TCP:ack:corrupt},tamper{TCP:flags:replace:S})-| \\/ ",
};

/// Strategy 4 — Corrupt ACK Alone (China).
pub const STRATEGY_4: NamedStrategy = NamedStrategy {
    id: 4,
    name: "Corrupt ACK Alone",
    text: "[TCP:flags:SA]-duplicate(tamper{TCP:ack:corrupt},)-| \\/ ",
};

/// Strategy 5 — Corrupt ACK, Injected Load (China).
pub const STRATEGY_5: NamedStrategy = NamedStrategy {
    id: 5,
    name: "Corrupt ACK, Injected Load",
    text: "[TCP:flags:SA]-duplicate(tamper{TCP:ack:corrupt},tamper{TCP:load:corrupt})-| \\/ ",
};

/// Strategy 6 — Injected Load, Induced RST (China).
pub const STRATEGY_6: NamedStrategy = NamedStrategy {
    id: 6,
    name: "Injected Load, Induced RST",
    text: "[TCP:flags:SA]-duplicate(duplicate(tamper{TCP:flags:replace:F}(tamper{TCP:load:corrupt},),tamper{TCP:ack:corrupt}),)-| \\/ ",
};

/// Strategy 7 — Injected RST, Induced RST (China).
pub const STRATEGY_7: NamedStrategy = NamedStrategy {
    id: 7,
    name: "Injected RST, Induced RST",
    text: "[TCP:flags:SA]-duplicate(duplicate(tamper{TCP:flags:replace:R},tamper{TCP:ack:corrupt}),)-| \\/ ",
};

/// Strategy 8 — TCP Window Reduction (China, India, Iran, Kazakhstan).
pub const STRATEGY_8: NamedStrategy = NamedStrategy {
    id: 8,
    name: "TCP Window Reduction",
    text:
        "[TCP:flags:SA]-tamper{TCP:window:replace:10}(tamper{TCP:options-wscale:replace:},)-| \\/ ",
};

/// Strategy 9 — Triple Load (Kazakhstan).
pub const STRATEGY_9: NamedStrategy = NamedStrategy {
    id: 9,
    name: "Triple Load",
    text: "[TCP:flags:SA]-tamper{TCP:load:corrupt}(duplicate(duplicate,),)-| \\/ ",
};

/// Strategy 10 — Double GET (Kazakhstan).
pub const STRATEGY_10: NamedStrategy = NamedStrategy {
    id: 10,
    name: "Double GET",
    text: "[TCP:flags:SA]-tamper{TCP:load:replace:GET / HTTP1.}(duplicate,)-| \\/ ",
};

/// Strategy 11 — Null Flags (Kazakhstan).
pub const STRATEGY_11: NamedStrategy = NamedStrategy {
    id: 11,
    name: "Null Flags",
    text: "[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:},)-| \\/ ",
};

/// All 11 server-side strategies, in paper order.
pub fn server_side() -> [NamedStrategy; 11] {
    [
        STRATEGY_1,
        STRATEGY_2,
        STRATEGY_3,
        STRATEGY_4,
        STRATEGY_5,
        STRATEGY_6,
        STRATEGY_7,
        STRATEGY_8,
        STRATEGY_9,
        STRATEGY_10,
        STRATEGY_11,
    ]
}

/// Look a strategy up by its paper number (0 = no evasion / identity).
pub fn by_id(id: u32) -> Option<Strategy> {
    if id == 0 {
        return Some(Strategy::identity());
    }
    server_side()
        .iter()
        .find(|s| s.id == id)
        .map(|s| s.strategy())
}

/// The §7 client-compatibility fix for a strategy, if it needs one.
///
/// Strategies 5, 9, and 10 put payloads on SYN+ACK packets, which
/// breaks Windows and macOS handshakes. The fix re-sends the payload
/// packets with a **corrupted TCP checksum** (insertion packets: the
/// censor processes them, every client stack drops them) and appends
/// the clean SYN+ACK afterwards.
pub fn client_compat_fix(id: u32) -> Option<NamedStrategy> {
    match id {
        5 => Some(NamedStrategy {
            id: 5,
            name: "Corrupt ACK, Injected Load (chksum-fixed)",
            text: "[TCP:flags:SA]-duplicate(tamper{TCP:ack:corrupt},duplicate(tamper{TCP:load:corrupt}(tamper{TCP:chksum:corrupt},),))-| \\/ ",
        }),
        9 => Some(NamedStrategy {
            id: 9,
            name: "Triple Load (chksum-fixed)",
            text: "[TCP:flags:SA]-duplicate(tamper{TCP:load:corrupt}(tamper{TCP:chksum:corrupt}(duplicate(duplicate,),),),)-| \\/ ",
        }),
        10 => Some(NamedStrategy {
            id: 10,
            name: "Double GET (chksum-fixed)",
            text: "[TCP:flags:SA]-duplicate(tamper{TCP:load:replace:GET / HTTP1.}(tamper{TCP:chksum:corrupt}(duplicate,),),)-| \\/ ",
        }),
        _ => None,
    }
}

/// Variant species the paper reports Geneva also found (§5):
/// Strategy 3 with its two packets reversed, Strategy 6 with an ACK
/// instead of the FIN, and Strategy 9 with extra duplicates ("does not
/// reduce the effectiveness").
pub fn variants() -> Vec<NamedStrategy> {
    vec![
        NamedStrategy {
            id: 3,
            name: "Corrupt ACK, Sim. Open (reversed order)",
            text: "[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:S},tamper{TCP:ack:corrupt})-| \\/ ",
        },
        NamedStrategy {
            id: 6,
            name: "Injected Load, Induced RST (ACK variant)",
            text: "[TCP:flags:SA]-duplicate(duplicate(tamper{TCP:flags:replace:A}(tamper{TCP:load:corrupt},),tamper{TCP:ack:corrupt}),)-| \\/ ",
        },
        NamedStrategy {
            id: 9,
            name: "Quadruple Load",
            text: "[TCP:flags:SA]-tamper{TCP:load:corrupt}(duplicate(duplicate,duplicate),)-| \\/ ",
        },
    ]
}

/// Representative client-side strategies from prior work (Bock et al.
/// 2019; Khattak et al.; lib·erate; INTANG), used by the §3
/// generalization experiment. All are *insertion-packet* species: they
/// fire on the client's handshake ACK and inject a packet the censor
/// processes but the server never does.
pub fn client_side() -> Vec<NamedStrategy> {
    vec![
        NamedStrategy {
            id: 101,
            name: "TCB Teardown: TTL-limited RST",
            text: "[TCP:flags:A]-duplicate(,tamper{TCP:flags:replace:R}(tamper{IP:ttl:replace:9},))-| \\/ ",
        },
        NamedStrategy {
            id: 102,
            name: "TCB Teardown: TTL-limited RST+ACK",
            text: "[TCP:flags:A]-duplicate(,tamper{TCP:flags:replace:RA}(tamper{IP:ttl:replace:9},))-| \\/ ",
        },
        NamedStrategy {
            id: 103,
            name: "TCB Teardown: bad-checksum RST",
            text: "[TCP:flags:A]-duplicate(,tamper{TCP:flags:replace:R}(tamper{TCP:chksum:corrupt},))-| \\/ ",
        },
        NamedStrategy {
            id: 104,
            name: "TCB Teardown: bad-checksum RST+ACK",
            text: "[TCP:flags:A]-duplicate(,tamper{TCP:flags:replace:RA}(tamper{TCP:chksum:corrupt},))-| \\/ ",
        },
        NamedStrategy {
            id: 105,
            name: "TCB Desync: TTL-limited junk payload",
            text: "[TCP:flags:A]-duplicate(,tamper{TCP:load:corrupt}(tamper{IP:ttl:replace:9},))-| \\/ ",
        },
        NamedStrategy {
            id: 106,
            name: "Segmentation (no server analog)",
            text: "[TCP:flags:PA]-fragment{TCP:8:True}(,)-| \\/ ",
        },
    ]
}

/// Where a server-side analog injects the insertion packet (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalogPosition {
    /// Insertion packet first, then the SYN+ACK.
    BeforeSynAck,
    /// SYN+ACK first, then the insertion packet.
    AfterSynAck,
}

/// The insertion-packet shapes §3 translates to server-side.
pub const INSERTION_SHAPES: [(&str, &str); 5] = [
    // (name, tamper chain applied to the duplicated SYN+ACK)
    (
        "TTL-limited RST",
        "tamper{TCP:flags:replace:R}(tamper{IP:ttl:replace:9},)",
    ),
    (
        "TTL-limited RST+ACK",
        "tamper{TCP:flags:replace:RA}(tamper{IP:ttl:replace:9},)",
    ),
    (
        "bad-checksum RST",
        "tamper{TCP:flags:replace:R}(tamper{TCP:chksum:corrupt},)",
    ),
    (
        "bad-checksum RST+ACK",
        "tamper{TCP:flags:replace:RA}(tamper{TCP:chksum:corrupt},)",
    ),
    (
        "TTL-limited junk load",
        "tamper{TCP:load:corrupt}(tamper{IP:ttl:replace:9},)",
    ),
];

/// Generate the §3 server-side analogs: each insertion shape, sent
/// before and after the SYN+ACK (2 × [`INSERTION_SHAPES`] strategies).
pub fn server_side_analogs() -> Vec<(String, AnalogPosition, Strategy)> {
    let mut out = Vec::new();
    for (name, chain) in INSERTION_SHAPES {
        for position in [AnalogPosition::BeforeSynAck, AnalogPosition::AfterSynAck] {
            let text = match position {
                AnalogPosition::BeforeSynAck => {
                    format!("[TCP:flags:SA]-duplicate({chain},)-| \\/ ")
                }
                AnalogPosition::AfterSynAck => {
                    format!("[TCP:flags:SA]-duplicate(,{chain})-| \\/ ")
                }
            };
            let strategy = parse_strategy(&text).expect("analog parses");
            out.push((name.to_string(), position, strategy));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;
    use crate::ast::Action;

    #[test]
    fn all_library_strategies_parse_and_round_trip() {
        for named in server_side() {
            let strategy = named.strategy();
            let rendered = strategy.to_string();
            let reparsed = parse_strategy(&rendered).unwrap();
            assert_eq!(strategy, reparsed, "strategy {} round trip", named.id);
            assert_eq!(strategy.outbound.len(), 1);
            assert!(strategy.inbound.is_empty());
        }
    }

    #[test]
    fn fixes_parse_and_exist_only_for_payload_strategies() {
        for id in 1..=11 {
            let fix = client_compat_fix(id);
            assert_eq!(fix.is_some(), matches!(id, 5 | 9 | 10), "id {id}");
            if let Some(named) = fix {
                named.strategy();
            }
        }
    }

    #[test]
    fn by_id_covers_0_through_11() {
        assert_eq!(by_id(0), Some(Strategy::identity()));
        for id in 1..=11 {
            assert!(by_id(id).is_some(), "id {id}");
        }
        assert!(by_id(12).is_none());
    }

    #[test]
    fn variants_parse_and_share_paper_ids() {
        for named in variants() {
            named.strategy();
            assert!(matches!(named.id, 3 | 6 | 9));
        }
    }

    #[test]
    fn client_side_strategies_parse() {
        for named in client_side() {
            named.strategy();
        }
    }

    #[test]
    fn analogs_cover_both_positions() {
        let analogs = server_side_analogs();
        assert_eq!(analogs.len(), INSERTION_SHAPES.len() * 2);
        for (_, _, strategy) in &analogs {
            assert_eq!(strategy.outbound.len(), 1);
            assert!(matches!(strategy.outbound[0].action, Action::Duplicate(..)));
        }
    }

    #[test]
    fn strategies_trigger_only_on_syn_ack() {
        use packet::{Packet, TcpFlags};
        let syn = Packet::tcp([1; 4], 80, [2; 4], 1, TcpFlags::SYN, 0, 0, vec![]);
        for named in server_side() {
            assert!(
                !named.strategy().outbound[0].trigger.matches(&syn),
                "strategy {} fired on a bare SYN",
                named.id
            );
        }
    }
}
