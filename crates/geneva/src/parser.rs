//! Recursive-descent parser for the Geneva DSL.
//!
//! Grammar (paper appendix):
//!
//! ```text
//! strategy   := outbound* ("\/" inbound*)?
//! pair       := "[" trigger "]" "-" action "-|"
//! trigger    := PROTO ":" field ":" value
//! action     := "send" | "drop"
//!             | "duplicate" args?
//!             | "tamper" "{" PROTO ":" field ":" mode (":" value)? "}" args?
//!             | "fragment" "{" PROTO ":" offset ":" bool "}" args?
//! args       := "(" action? ("," action?)* ")"
//! ```
//!
//! An omitted action (empty argument slot, or no `args` at all) means
//! `send` — Geneva's strategies lean on this heavily
//! (`duplicate(,tamper{...})`, trailing `(X,)`, bare `duplicate`).

// Wire formats truncate by definition: length, checksum, and offset
// fields are specified modulo their width.
#![allow(clippy::cast_possible_truncation)]
use crate::ast::{Action, Span, Strategy, StrategyPart, TamperMode, Trigger};
use crate::ParseError;
use packet::field::{FieldRef, FieldValue};
use packet::Proto;

/// Source spans for one `trigger ⇒ action` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartSpans {
    /// The whole pair, `[` through `-|`.
    pub part: Span,
    /// The `[trigger]` segment, brackets included.
    pub trigger: Span,
    /// One span per action-tree node, **preorder** (node before
    /// children, children left to right) — the order `Action::walk`
    /// visits, so the n-th visited node pairs with `actions[n]`.
    /// Implicit `send` slots get zero-width spans at their position.
    pub actions: Vec<Span>,
}

/// Source spans for every part of a parsed strategy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StrategySpans {
    /// Spans of the outbound parts, in order.
    pub outbound: Vec<PartSpans>,
    /// Spans of the inbound parts, in order.
    pub inbound: Vec<PartSpans>,
}

/// Parse a full strategy string.
pub fn parse_strategy(input: &str) -> Result<Strategy, ParseError> {
    parse_strategy_spanned(input).map(|(strategy, _)| strategy)
}

/// Parse a full strategy string, also returning a byte-offset span for
/// every part and every action node (what `strata` diagnostics point
/// at).
pub fn parse_strategy_spanned(input: &str) -> Result<(Strategy, StrategySpans), ParseError> {
    let mut p = Parser {
        input: input.as_bytes(),
        at: 0,
    };
    let mut strategy = Strategy::default();
    let mut spans = StrategySpans::default();
    p.skip_ws();
    while p.peek() == Some(b'[') {
        let (part, part_spans) = p.pair()?;
        strategy.outbound.push(part);
        spans.outbound.push(part_spans);
        p.skip_ws();
    }
    if p.peek() == Some(b'\\') {
        p.expect_str("\\/")?;
        p.skip_ws();
        while p.peek() == Some(b'[') {
            let (part, part_spans) = p.pair()?;
            strategy.inbound.push(part);
            spans.inbound.push(part_spans);
            p.skip_ws();
        }
    }
    p.skip_ws();
    if p.at != p.input.len() {
        return Err(p.err("trailing input"));
    }
    Ok((strategy, spans))
}

struct Parser<'a> {
    input: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            span: Span::point(self.at),
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.at).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.at += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\n') | Some(b'\t')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.bump() == Some(byte) {
            Ok(())
        } else {
            self.at = self.at.saturating_sub(1);
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn expect_str(&mut self, s: &str) -> Result<(), ParseError> {
        if self.input[self.at..].starts_with(s.as_bytes()) {
            self.at += s.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected \"{s}\"")))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.input[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            true
        } else {
            false
        }
    }

    /// Characters up to (not including) any byte in `stop`.
    fn until(&mut self, stop: &[u8]) -> &'a str {
        let start = self.at;
        while let Some(b) = self.peek() {
            if stop.contains(&b) {
                break;
            }
            self.at += 1;
        }
        std::str::from_utf8(&self.input[start..self.at]).unwrap_or("")
    }

    fn pair(&mut self) -> Result<(StrategyPart, PartSpans), ParseError> {
        let part_start = self.at;
        self.expect(b'[')?;
        let proto_str = self.until(b":").to_string();
        self.expect(b':')?;
        let field_str = self.until(b":").to_string();
        self.expect(b':')?;
        let value = self.until(b"]").to_string();
        self.expect(b']')?;
        let trigger_span = Span::new(part_start, self.at);
        let proto = Proto::parse(&proto_str).ok_or_else(|| self.err("unknown trigger protocol"))?;
        let field = FieldRef::new(proto, &field_str);
        field
            .kind()
            .map_err(|e| self.err(&format!("bad trigger field: {e}")))?;
        self.expect(b'-')?;
        let mut actions = Vec::new();
        let action = self.action(&mut actions)?;
        self.expect_str("-|")?;
        debug_assert_eq!(actions.len(), action.size(), "span/node count mismatch");
        Ok((
            StrategyPart {
                trigger: Trigger { field, value },
                action,
            },
            PartSpans {
                part: Span::new(part_start, self.at),
                trigger: trigger_span,
                actions,
            },
        ))
    }

    /// Parse one action subtree, appending one span per node to
    /// `spans` in preorder.
    fn action(&mut self, spans: &mut Vec<Span>) -> Result<Action, ParseError> {
        self.skip_ws();
        let start = self.at;
        let index = spans.len();
        spans.push(Span::point(start)); // placeholder until the node ends
        let action = self.action_inner(spans)?;
        spans[index] = Span::new(start, self.at);
        Ok(action)
    }

    fn action_inner(&mut self, spans: &mut Vec<Span>) -> Result<Action, ParseError> {
        if self.eat_keyword("duplicate") {
            let (a, b) = self.two_args(spans)?;
            return Ok(Action::Duplicate(Box::new(a), Box::new(b)));
        }
        if self.eat_keyword("fragment") {
            self.expect(b'{')?;
            let proto_str = self.until(b":").to_string();
            self.expect(b':')?;
            let offset_str = self.until(b":").to_string();
            self.expect(b':')?;
            let order_str = self.until(b"}").to_string();
            self.expect(b'}')?;
            let proto =
                Proto::parse(&proto_str).ok_or_else(|| self.err("unknown fragment protocol"))?;
            let offset: i64 = offset_str
                .parse()
                .map_err(|_| self.err("bad fragment offset"))?;
            let in_order = matches!(order_str.as_str(), "True" | "true" | "1");
            let (first, second) = self.two_args(spans)?;
            return Ok(Action::Fragment {
                proto,
                // Geneva uses -1 for "middle"; we clamp at apply time.
                offset: offset.max(0) as usize,
                in_order,
                first: Box::new(first),
                second: Box::new(second),
            });
        }
        if self.eat_keyword("tamper") {
            self.expect(b'{')?;
            let proto_str = self.until(b":").to_string();
            self.expect(b':')?;
            let field_str = self.until(b":").to_string();
            self.expect(b':')?;
            let mode_str = self.until(b":}").to_string();
            let mode = match mode_str.as_str() {
                "corrupt" => {
                    self.expect(b'}')?;
                    TamperMode::Corrupt
                }
                "replace" => {
                    self.expect(b':')?;
                    let value_str = self.until(b"}").to_string();
                    self.expect(b'}')?;
                    TamperMode::Replace(parse_value(&value_str))
                }
                other => return Err(self.err(&format!("unknown tamper mode {other:?}"))),
            };
            let proto =
                Proto::parse(&proto_str).ok_or_else(|| self.err("unknown tamper protocol"))?;
            let field = FieldRef::new(proto, &field_str);
            field
                .kind()
                .map_err(|e| self.err(&format!("bad tamper field: {e}")))?;
            let next = if self.peek() == Some(b'(') {
                let before = spans.len();
                let (only, extra) = self.two_args(spans)?;
                if !matches!(extra, Action::Send) {
                    return Err(self.err("tamper takes one subtree"));
                }
                // `extra` is a bare send: drop its span so the span
                // stream stays aligned with the one-child AST.
                debug_assert_eq!(spans.len(), before + only.size() + 1);
                spans.pop();
                only
            } else {
                spans.push(Span::point(self.at)); // implicit send child
                Action::Send
            };
            return Ok(Action::Tamper {
                field,
                mode,
                next: Box::new(next),
            });
        }
        if self.eat_keyword("drop") {
            return Ok(Action::Drop);
        }
        if self.eat_keyword("send") {
            return Ok(Action::Send);
        }
        // Empty slot = send.
        Ok(Action::Send)
    }

    /// Parse `( a? , b? )` — both optional — or nothing at all. Every
    /// slot contributes its subtree's spans (implicit sends a
    /// zero-width span), first subtree before second.
    fn two_args(&mut self, spans: &mut Vec<Span>) -> Result<(Action, Action), ParseError> {
        if self.peek() != Some(b'(') {
            spans.push(Span::point(self.at));
            spans.push(Span::point(self.at));
            return Ok((Action::Send, Action::Send));
        }
        self.expect(b'(')?;
        let first = if matches!(self.peek(), Some(b',') | Some(b')')) {
            spans.push(Span::point(self.at));
            Action::Send
        } else {
            self.action(spans)?
        };
        let second = if self.peek() == Some(b',') {
            self.bump();
            if self.peek() == Some(b')') {
                spans.push(Span::point(self.at));
                Action::Send
            } else {
                self.action(spans)?
            }
        } else {
            spans.push(Span::point(self.at));
            Action::Send
        };
        self.expect(b')')?;
        Ok((first, second))
    }
}

/// Interpret a replace-value string: numbers become numeric, `%xx`
/// escapes become bytes, empty is `Empty`, everything else is a string.
fn parse_value(s: &str) -> FieldValue {
    if s.is_empty() {
        return FieldValue::Empty;
    }
    if let Ok(n) = s.parse::<u64>() {
        return FieldValue::Num(n);
    }
    if s.starts_with('%') && s.len().is_multiple_of(3) {
        let mut bytes = Vec::with_capacity(s.len() / 3);
        let mut ok = true;
        for chunk in s.as_bytes().chunks(3) {
            if chunk[0] != b'%' {
                ok = false;
                break;
            }
            match u8::from_str_radix(std::str::from_utf8(&chunk[1..]).unwrap_or("zz"), 16) {
                Ok(b) => bytes.push(b),
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            return FieldValue::Bytes(bytes);
        }
    }
    FieldValue::Str(s.to_string())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    fn round_trip(text: &str) -> Strategy {
        let parsed = parse_strategy(text).unwrap_or_else(|e| panic!("{text}: {e}"));
        let rendered = parsed.to_string();
        let reparsed =
            parse_strategy(&rendered).unwrap_or_else(|e| panic!("re-parse of {rendered:?}: {e}"));
        assert_eq!(parsed, reparsed, "round trip changed meaning for {text}");
        parsed
    }

    #[test]
    fn parses_paper_strategy_1() {
        let s = round_trip(
            "[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},tamper{TCP:flags:replace:S})-| \\/ ",
        );
        assert_eq!(s.outbound.len(), 1);
        assert!(s.inbound.is_empty());
        match &s.outbound[0].action {
            Action::Duplicate(a, b) => {
                assert!(matches!(**a, Action::Tamper { .. }));
                assert!(matches!(**b, Action::Tamper { .. }));
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn parses_empty_argument_slots() {
        let s = round_trip("[TCP:flags:SA]-duplicate(,tamper{TCP:load:corrupt})-| \\/ ");
        match &s.outbound[0].action {
            Action::Duplicate(a, b) => {
                assert_eq!(**a, Action::Send);
                assert!(matches!(**b, Action::Tamper { .. }));
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn parses_trailing_comma_and_bare_duplicate() {
        round_trip("[TCP:flags:SA]-duplicate(tamper{TCP:ack:corrupt},)-| \\/ ");
        round_trip("[TCP:flags:SA]-tamper{TCP:load:corrupt}(duplicate(duplicate,),)-| \\/ ");
    }

    #[test]
    fn parses_replace_with_empty_value() {
        let s = round_trip(
            "[TCP:flags:SA]-tamper{TCP:window:replace:10}(tamper{TCP:options-wscale:replace:},)-| \\/ ",
        );
        match &s.outbound[0].action {
            Action::Tamper { mode, next, .. } => {
                assert_eq!(*mode, TamperMode::Replace(FieldValue::Num(10)));
                match &**next {
                    Action::Tamper { mode, .. } => {
                        assert_eq!(*mode, TamperMode::Replace(FieldValue::Empty))
                    }
                    other => panic!("wrong inner: {other:?}"),
                }
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn parses_string_replace_value_with_spaces() {
        let s =
            round_trip("[TCP:flags:SA]-tamper{TCP:load:replace:GET / HTTP1.}(duplicate,)-| \\/ ");
        match &s.outbound[0].action {
            Action::Tamper { mode, .. } => {
                assert_eq!(
                    *mode,
                    TamperMode::Replace(FieldValue::Str("GET / HTTP1.".into()))
                );
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn parses_fragment_and_drop() {
        let s = round_trip("[TCP:flags:PA]-fragment{TCP:8:False}(,drop)-| \\/ ");
        match &s.outbound[0].action {
            Action::Fragment {
                offset,
                in_order,
                second,
                ..
            } => {
                assert_eq!(*offset, 8);
                assert!(!in_order);
                assert_eq!(**second, Action::Drop);
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn parses_inbound_section() {
        let s = round_trip("[TCP:flags:SA]-drop-| \\/ [TCP:flags:R]-drop-|");
        assert_eq!(s.outbound.len(), 1);
        assert_eq!(s.inbound.len(), 1);
    }

    #[test]
    fn parses_hex_escape_values() {
        let s = parse_strategy("[TCP:flags:SA]-tamper{TCP:load:replace:%de%ad}-| \\/ ").unwrap();
        match &s.outbound[0].action {
            Action::Tamper { mode, .. } => {
                assert_eq!(
                    *mode,
                    TamperMode::Replace(FieldValue::Bytes(vec![0xDE, 0xAD]))
                );
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_strategy("[TCP:flags:SA]-explode-|").is_err());
        assert!(parse_strategy("[GRE:flags:SA]-drop-|").is_err());
        assert!(parse_strategy("[TCP:bogusfield:SA]-drop-|").is_err());
        assert!(parse_strategy("[TCP:flags:SA]-tamper{TCP:ack:explode}-|").is_err());
        assert!(parse_strategy("[TCP:flags:SA]-drop-| trailing").is_err());
    }

    #[test]
    fn identity_strategy_parses() {
        let s = parse_strategy(" \\/ ").unwrap();
        assert!(s.outbound.is_empty() && s.inbound.is_empty());
        let s = parse_strategy("").unwrap();
        assert!(s.outbound.is_empty() && s.inbound.is_empty());
    }
}
