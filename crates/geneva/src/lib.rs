//! # geneva — the strategy DSL and packet-manipulation engine
//!
//! This crate is the paper's primary contribution surface: Geneva's
//! genetic building blocks (`duplicate`, `fragment`, `tamper`, `drop`,
//! `send`), the domain-specific language that composes them, and the
//! engine that applies a composed strategy to a packet stream —
//! extended, as in the paper, to run **server-side**.
//!
//! ## The DSL (paper appendix)
//!
//! A strategy is a set of `trigger ⇒ action-tree` pairs for outbound
//! and inbound packets:
//!
//! ```text
//! [TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},tamper{TCP:flags:replace:S})-| \/
//! ```
//!
//! reads: *on outbound SYN+ACK packets, make two copies; turn the
//! first into a RST and the second into a SYN, and send both* — the
//! paper's Strategy 1 ("Simultaneous Open, Injected RST").
//!
//! * [`ast`] — the strategy tree types;
//! * [`parser`] — text → AST (round-trips with `Display`);
//! * [`engine`] — AST × packet → packets, with faithful
//!   checksum-recompute semantics (`corrupt`ing a checksum leaves it
//!   broken; tampering any other field re-finalizes the packet);
//! * [`library`] — all 11 server-side strategies from §5, their §7
//!   client-compatibility fixes, and the client-side strategies whose
//!   server-side analogs §3 shows failing;
//! * [`wrapper`] — [`wrapper::StrategicEndpoint`], which wraps any
//!   `netsim` endpoint and rewrites its traffic through a strategy,
//!   i.e. "deploying Geneva at the server".
//!
//! ```
//! use geneva::{parse_strategy, Engine};
//! use packet::{Packet, TcpFlags};
//!
//! // Strategy 1 from the paper, straight from its DSL text.
//! let strategy = parse_strategy(
//!     "[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},tamper{TCP:flags:replace:S})-| \\/ ",
//! ).unwrap();
//!
//! // Apply it to a server's SYN+ACK: out come a RST and a SYN.
//! let mut engine = Engine::new(strategy, 42);
//! let mut syn_ack = Packet::tcp([5,6,7,8], 80, [1,2,3,4], 40000,
//!                               TcpFlags::SYN_ACK, 9000, 1001, vec![]);
//! syn_ack.finalize();
//! let wire = engine.apply_outbound(&syn_ack);
//! assert_eq!(wire.len(), 2);
//! assert_eq!(wire[0].flags(), TcpFlags::RST);
//! assert_eq!(wire[1].flags(), TcpFlags::SYN);
//! ```

pub mod ast;
pub mod engine;
pub mod explain;
pub mod library;
pub mod parser;
pub mod wrapper;

pub use ast::{Action, Span, Strategy, StrategyPart, TamperMode, Trigger};
pub use engine::Engine;
pub use explain::explain;
pub use parser::{parse_strategy, parse_strategy_spanned, PartSpans, StrategySpans};
pub use wrapper::StrategicEndpoint;

/// Errors from parsing strategy text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte range in the input the error points at (zero-width at EOF).
    pub span: Span,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    /// Byte offset where parsing failed.
    pub fn at(&self) -> usize {
        self.span.start
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "parse error at byte {}: {}",
            self.span.start, self.message
        )
    }
}

impl std::error::Error for ParseError {}
