//! Deploying a strategy at an endpoint: the "run Geneva server-side"
//! shim.
//!
//! [`StrategicEndpoint`] wraps any `netsim::Endpoint` (in practice the
//! stock `endpoint::ServerHost`) and rewrites the packets it emits
//! through a strategy [`Engine`] — exactly how the paper deploys
//! evasion: the server's TCP stack is unmodified; a packet-level shim
//! (their extended Geneva) intercepts outbound packets and applies the
//! strategy. Inbound rules, when present, rewrite received packets
//! before the stack sees them.

use crate::engine::Engine;
use netsim::{Endpoint, Io};
use packet::Packet;

/// An endpoint with a Geneva strategy bolted onto its wire interface.
pub struct StrategicEndpoint<E> {
    /// The unmodified inner host.
    pub inner: E,
    /// The strategy engine.
    pub engine: Engine,
    /// Steady-state scratch: the emitted packets are swapped in here
    /// while the rewritten stream is built back into `io.out`, so the
    /// per-call buffer churn of `mem::take` never hits the allocator.
    scratch: Vec<Packet>,
    /// Scratch for the inbound rewrite of one received packet.
    in_scratch: Vec<Packet>,
}

impl<E: Endpoint> StrategicEndpoint<E> {
    /// Wrap `inner` with `engine`.
    pub fn new(inner: E, engine: Engine) -> Self {
        StrategicEndpoint {
            inner,
            engine,
            scratch: Vec::new(),
            in_scratch: Vec::new(),
        }
    }

    fn transform_out(&mut self, io: &mut Io) {
        std::mem::swap(&mut io.out, &mut self.scratch);
        io.out.clear();
        for pkt in self.scratch.drain(..) {
            self.engine.apply_outbound_into(&pkt, &mut io.out);
        }
    }
}

impl<E: Endpoint> Endpoint for StrategicEndpoint<E> {
    fn on_start(&mut self, now: u64, io: &mut Io) {
        self.inner.on_start(now, io);
        self.transform_out(io);
    }

    fn on_packet(&mut self, pkt: Packet, now: u64, io: &mut Io) {
        let mut rewritten = std::mem::take(&mut self.in_scratch);
        rewritten.clear();
        self.engine.apply_inbound_into(&pkt, &mut rewritten);
        for p in rewritten.drain(..) {
            self.inner.on_packet(p, now, io);
        }
        self.in_scratch = rewritten;
        self.transform_out(io);
    }

    fn on_wake(&mut self, now: u64, io: &mut Io) {
        self.inner.on_wake(now, io);
        self.transform_out(io);
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;
    use crate::library::STRATEGY_1;
    use packet::TcpFlags;

    /// An endpoint that replies to any packet with a SYN+ACK.
    struct SynAcker;

    impl Endpoint for SynAcker {
        fn on_start(&mut self, _now: u64, _io: &mut Io) {}
        fn on_packet(&mut self, pkt: Packet, _now: u64, io: &mut Io) {
            let mut sa = Packet::tcp(
                pkt.ip.dst,
                pkt.dst_port(),
                pkt.ip.src,
                pkt.src_port(),
                TcpFlags::SYN_ACK,
                100,
                pkt.tcp_header().map(|t| t.seq + 1).unwrap_or(0),
                vec![],
            );
            sa.finalize();
            io.send(sa);
        }
        fn on_wake(&mut self, _now: u64, _io: &mut Io) {}
    }

    #[test]
    fn outbound_syn_ack_is_rewritten() {
        let mut wrapped = StrategicEndpoint::new(SynAcker, Engine::new(STRATEGY_1.strategy(), 7));
        let syn = Packet::tcp([1; 4], 1111, [2; 4], 80, TcpFlags::SYN, 50, 0, vec![]);
        let mut io = Io::default();
        wrapped.on_packet(syn, 0, &mut io);
        assert_eq!(io.out.len(), 2);
        assert_eq!(io.out[0].flags(), TcpFlags::RST);
        assert_eq!(io.out[1].flags(), TcpFlags::SYN);
    }

    #[test]
    fn identity_engine_is_transparent() {
        let mut wrapped =
            StrategicEndpoint::new(SynAcker, Engine::new(crate::ast::Strategy::identity(), 7));
        let syn = Packet::tcp([1; 4], 1111, [2; 4], 80, TcpFlags::SYN, 50, 0, vec![]);
        let mut io = Io::default();
        wrapped.on_packet(syn, 0, &mut io);
        assert_eq!(io.out.len(), 1);
        assert!(io.out[0].flags().is_syn_ack());
    }

    #[test]
    fn inbound_drop_rule_shields_inner() {
        let strategy = crate::parse_strategy(" \\/ [TCP:flags:R]-drop-|").unwrap();
        let mut wrapped = StrategicEndpoint::new(SynAcker, Engine::new(strategy, 7));
        let rst = Packet::tcp([1; 4], 1, [2; 4], 2, TcpFlags::RST, 0, 0, vec![]);
        let mut io = Io::default();
        wrapped.on_packet(rst, 0, &mut io);
        assert!(io.out.is_empty(), "inner never saw the RST");
    }
}
