//! The packet-manipulation engine: apply a strategy to a packet stream.
//!
//! ## Checksum semantics (paper appendix, §7)
//!
//! `tamper` "recomputes the appropriate checksums and lengths, unless
//! the field itself is a checksum or length; `corrupt` of a checksum
//! does not recompute it". Concretely, after each tamper we re-finalize
//! the packet (lengths, offsets, checksums) **unless** the tampered
//! field is derived (`TCP:chksum`, `IP:len`, …), in which case the
//! stored — possibly bogus — value rides to the wire. This asymmetry is
//! load-bearing: `tamper{TCP:ack:corrupt}` must produce a *valid*
//! packet (the client has to process it and send the induced RST),
//! while `tamper{TCP:chksum:corrupt}` must produce an *invalid* one
//! (an insertion packet only the censor processes).
//!
//! `corrupt` draws random bits of the field's width from a PRNG seeded
//! by (engine seed, packet bytes, field name), so experiments replay
//! deterministically. Deriving the stream *per corruption site* rather
//! than sequentially means a corrupt's output never depends on how many
//! other corrupts ran before it — which is what lets `strata` delete
//! dead subtrees while preserving engine output byte-for-byte.

// Wire formats truncate by definition: length, checksum, and offset
// fields are specified modulo their width.
#![allow(clippy::cast_possible_truncation)]
use crate::ast::{Action, Strategy, TamperMode};
use packet::checksum::{incremental_update, incremental_update32};
use packet::field::{FieldKind, FieldRef, FieldValue};
use packet::{Packet, Proto, TcpFlags, Transport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A strategy plus the seed that powers its `corrupt` tampers.
///
/// The strategy is held behind an `Arc`: engines are constructed per
/// trial in hot loops (`harness::trial`, `evolve::fitness`), and the
/// tree itself never mutates, so sharing one allocation across
/// thousands of trials beats cloning the tree each time. `new` accepts
/// either an owned [`Strategy`] or an `Arc<Strategy>`.
pub struct Engine {
    /// The strategy being applied.
    pub strategy: Arc<Strategy>,
    seed: u64,
}

impl Engine {
    /// Build an engine with a deterministic seed.
    pub fn new(strategy: impl Into<Arc<Strategy>>, seed: u64) -> Engine {
        Engine {
            strategy: strategy.into(),
            seed,
        }
    }

    /// Apply the outbound ruleset to one packet the host wants to send.
    /// Returns the packets that actually hit the wire, in order.
    pub fn apply_outbound(&mut self, pkt: &Packet) -> Vec<Packet> {
        let mut out = Vec::new();
        Self::apply(&self.strategy.outbound, pkt, self.seed, &mut out);
        out
    }

    /// Apply the inbound ruleset to one received packet.
    pub fn apply_inbound(&mut self, pkt: &Packet) -> Vec<Packet> {
        let mut out = Vec::new();
        Self::apply(&self.strategy.inbound, pkt, self.seed, &mut out);
        out
    }

    /// [`Engine::apply_outbound`] into a caller-owned buffer: appends
    /// the emitted packets to `out` so steady-state callers can reuse
    /// one allocation across the whole stream.
    pub fn apply_outbound_into(&mut self, pkt: &Packet, out: &mut Vec<Packet>) {
        Self::apply(&self.strategy.outbound, pkt, self.seed, out);
    }

    /// [`Engine::apply_inbound`] into a caller-owned buffer (appends).
    pub fn apply_inbound_into(&mut self, pkt: &Packet, out: &mut Vec<Packet>) {
        Self::apply(&self.strategy.inbound, pkt, self.seed, out);
    }

    fn apply(parts: &[crate::ast::StrategyPart], pkt: &Packet, seed: u64, out: &mut Vec<Packet>) {
        for part in parts {
            if part.trigger.matches(pkt) {
                run(&part.action, pkt.clone(), seed, out);
                return;
            }
        }
        out.push(pkt.clone());
    }
}

/// Execute one action subtree on one packet.
fn run(action: &Action, pkt: Packet, seed: u64, out: &mut Vec<Packet>) {
    match action {
        Action::Send => out.push(pkt),
        Action::Drop => {}
        Action::Duplicate(first, second) => {
            run(first, pkt.clone(), seed, out);
            run(second, pkt, seed, out);
        }
        Action::Tamper { field, mode, next } => {
            let tampered = tamper(pkt, field, mode, seed);
            run(next, tampered, seed, out);
        }
        Action::Fragment {
            proto,
            offset,
            in_order,
            first,
            second,
        } => {
            let (a, b) = split(pkt, *proto, *offset);
            match b {
                Some(b) if *in_order => {
                    run(first, a, seed, out);
                    run(second, b, seed, out);
                }
                Some(b) => {
                    run(second, b, seed, out);
                    run(first, a, seed, out);
                }
                None => run(first, a, seed, out), // nothing to split
            }
        }
    }
}

/// What a caller statically knows about the packet a tamper receives.
/// The default (`Checked`) claims nothing: the incremental fast path
/// re-checks canonicality at runtime. `TrustedValid` is a *proof
/// token* — `dplane` sets it only on tamper ops whose top-of-stack
/// packet `strata::absint` proved to be a fixed point of `finalize`
/// on every execution path, which lets [`tamper_hinted`] skip the two
/// O(packet) scans guarding the RFC 1624 patch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TamperHint {
    /// No static knowledge: verify canonicality before patching.
    #[default]
    Checked,
    /// Statically proven canonical with verifying checksums.
    TrustedValid,
}

/// Apply one tamper to one packet — the exact operation the tree walk
/// performs, exported so `dplane`'s compiled programs share the code
/// path (byte-identical output is a proven invariant, not a goal).
pub fn tamper(pkt: Packet, field: &FieldRef, mode: &TamperMode, seed: u64) -> Packet {
    tamper_hinted(pkt, field, mode, seed, TamperHint::Checked)
}

/// [`tamper`] with a static validity hint. Byte-identical to `tamper`
/// for every input: the hint only elides checks that the abstract
/// interpreter proved would return `true` (and debug builds still
/// assert they do).
pub fn tamper_hinted(
    mut pkt: Packet,
    field: &FieldRef,
    mode: &TamperMode,
    seed: u64,
    hint: TamperHint,
) -> Packet {
    let value = match mode {
        TamperMode::Replace(v) => v.clone(),
        TamperMode::Corrupt => corrupt_value(field, &pkt, seed),
    };
    let trusted = hint == TamperHint::TrustedValid;
    if !field.is_derived() && tamper_incremental(&mut pkt, field, &value, trusted) {
        return pkt;
    }
    let _ = field.set(&mut pkt, &value);
    if !field.is_derived() {
        pkt.finalize();
    }
    pkt
}

/// The common single-field tampers (`IP:ttl`, `TCP:flags`, `TCP:seq`)
/// patched with an RFC 1624 incremental checksum update instead of a
/// full [`Packet::finalize`]. Returns `true` when the patch was applied
/// (the packet is then exactly what `set` + `finalize` would produce).
///
/// The patch must reproduce `finalize` byte-for-byte, and `finalize`
/// repairs invalid checksums and rewrites desynchronized derived
/// fields, while an incremental update preserves whatever is stored.
/// So the fast path only fires when finalize would change nothing but
/// the tampered word: derived fields canonical and both stored
/// checksums verifying. Stored `0xFFFF` is excluded — it verifies (it
/// shares `0x0000`'s ones'-complement class) but is never the value a
/// recompute writes, so patching it would preserve a byte `finalize`
/// would rewrite.
///
/// `trusted` elides the two O(packet) canonicality scans when the
/// caller proved them statically ([`TamperHint::TrustedValid`]); the
/// cheap word-level gates (TCP transport, stored `0xFFFF`) stay, and
/// debug builds assert the proof.
fn tamper_incremental(
    pkt: &mut Packet,
    field: &FieldRef,
    value: &FieldValue,
    trusted: bool,
) -> bool {
    #[derive(Clone, Copy)]
    enum Site {
        IpTtl,
        TcpSeq,
        TcpFlags,
    }
    let site = match (field.proto, field.name.as_str()) {
        (Proto::Ip, "ttl") => Site::IpTtl,
        (Proto::Tcp, "seq") => Site::TcpSeq,
        (Proto::Tcp, "flags") => Site::TcpFlags,
        _ => return false,
    };
    // UDP's zero-means-disabled checksum has its own finalize
    // semantics; keep the fast path TCP-only.
    let Transport::Tcp(tcp) = &pkt.transport else {
        return false;
    };
    if pkt.ip.checksum == 0xFFFF || tcp.checksum == 0xFFFF {
        return false;
    }
    let offset_byte = (tcp.data_offset << 4) | (tcp.reserved & 0x0F);
    let old_seq = tcp.seq;
    let old_flags_word = u16::from_be_bytes([offset_byte, tcp.flags.0]);
    let old_ttl_word = u16::from_be_bytes([pkt.ip.ttl, pkt.ip.protocol]);
    if trusted {
        debug_assert!(
            pkt.derived_fields_canonical() && pkt.checksums_ok(),
            "TamperHint::TrustedValid on a non-canonical packet: the static proof is wrong"
        );
    } else if !pkt.derived_fields_canonical() || !pkt.checksums_ok() {
        return false;
    }
    // Replicate `set` exactly (range checks, flag-string parsing) by
    // calling it; a rejected value leaves the packet untouched, and
    // finalize on this already-canonical packet would be a no-op.
    if field.set(pkt, value).is_err() {
        return true;
    }
    match site {
        Site::IpTtl => {
            let new = u16::from_be_bytes([pkt.ip.ttl, pkt.ip.protocol]);
            pkt.ip.checksum = incremental_update(pkt.ip.checksum, old_ttl_word, new);
        }
        Site::TcpSeq => {
            let Transport::Tcp(tcp) = &mut pkt.transport else {
                unreachable!("transport checked above");
            };
            tcp.checksum = incremental_update32(tcp.checksum, old_seq, tcp.seq);
        }
        Site::TcpFlags => {
            let Transport::Tcp(tcp) = &mut pkt.transport else {
                unreachable!("transport checked above");
            };
            let new = u16::from_be_bytes([offset_byte, tcp.flags.0]);
            tcp.checksum = incremental_update(tcp.checksum, old_flags_word, new);
        }
    }
    true
}

/// A random value of the field's width. Payload corruption keeps the
/// current length (or invents a short random payload when empty — the
/// paper's `tamper{TCP:load:corrupt}` on an empty SYN+ACK).
///
/// The randomness is a pure function of (engine seed, packet bytes,
/// field): the PRNG is re-derived at every corruption site instead of
/// being threaded through the tree walk. Corrupt values therefore don't
/// shift when unrelated actions are added or removed elsewhere in the
/// strategy — the invariant `strata::canonicalize` relies on, and the
/// reason `dplane` can execute tampers in any compiled order.
pub fn corrupt_value(field: &FieldRef, pkt: &Packet, seed: u64) -> FieldValue {
    let mut rng = site_rng(field, pkt, seed);
    let rng = &mut rng;
    match field.kind().unwrap_or(FieldKind::U16) {
        FieldKind::U8 => FieldValue::Num(u64::from(rng.gen::<u8>())),
        FieldKind::U16 => FieldValue::Num(u64::from(rng.gen::<u16>())),
        FieldKind::U32 => FieldValue::Num(u64::from(rng.gen::<u32>())),
        FieldKind::Flags => FieldValue::Str(TcpFlags(rng.gen::<u8>()).to_geneva()),
        FieldKind::OptionNum => FieldValue::Num(u64::from(rng.gen::<u8>())),
        FieldKind::Bytes => {
            let len = if pkt.payload.is_empty() {
                rng.gen_range(8..=12)
            } else {
                pkt.payload.len()
            };
            FieldValue::Bytes((0..len).map(|_| rng.gen()).collect())
        }
    }
}

/// Derive the PRNG for one corruption site by folding the packet's raw
/// bytes and the field name into the engine seed (FNV-1a).
fn site_rng(field: &FieldRef, pkt: &Packet, seed: u64) -> StdRng {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(&pkt.serialize_raw());
    eat(field.to_syntax().as_bytes());
    StdRng::seed_from_u64(seed ^ hash)
}

/// Split a packet at the TCP or IP layer. Exported for `dplane`'s
/// compiled fragment ops.
pub fn split(pkt: Packet, proto: Proto, offset: usize) -> (Packet, Option<Packet>) {
    match proto {
        Proto::Tcp => {
            if pkt.payload.len() < 2 {
                return (pkt, None);
            }
            let cut = offset.clamp(1, pkt.payload.len() - 1);
            // Both fragments window the original payload's backing
            // buffer — no bytes are copied.
            let mut first = pkt.clone();
            first.payload = pkt.payload.slice(0..cut);
            first.finalize();
            let mut second = pkt;
            second.payload = second.payload.slice(cut..second.payload.len());
            if let Some(tcp) = second.tcp_header_mut() {
                tcp.seq = tcp.seq.wrapping_add(cut as u32);
            }
            second.finalize();
            (first, Some(second))
        }
        Proto::Ip => {
            // IP fragmentation: 8-byte-aligned split of the transport
            // segment. We model it at the payload level: both fragments
            // keep the TCP header, the second carries a fragment offset.
            if pkt.payload.len() < 16 {
                return (pkt, None);
            }
            let cut = (offset.max(8) / 8 * 8).min(pkt.payload.len() - 8);
            let mut first = pkt.clone();
            first.payload = pkt.payload.slice(0..cut);
            first.ip.flags |= packet::Ipv4Header::FLAG_MF;
            first.finalize();
            let mut second = pkt;
            second.payload = second.payload.slice(cut..second.payload.len());
            second.ip.fragment_offset = (cut / 8) as u16;
            if let Some(tcp) = second.tcp_header_mut() {
                tcp.seq = tcp.seq.wrapping_add(cut as u32);
            }
            second.finalize();
            (first, Some(second))
        }
        // Fragmentation is a transport/network-layer concept; the
        // application-layer namespaces don't split packets.
        Proto::Udp | Proto::Dns | Proto::Ftp => (pkt, None),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;
    use crate::parse_strategy;

    fn syn_ack() -> Packet {
        let mut p = Packet::tcp(
            [20, 0, 0, 9],
            80,
            [10, 0, 0, 1],
            40000,
            TcpFlags::SYN_ACK,
            9000,
            1001,
            vec![],
        );
        p.tcp_header_mut().unwrap().options = vec![
            packet::TcpOption::Mss(1460),
            packet::TcpOption::WindowScale(7),
        ];
        p.finalize();
        p
    }

    fn engine(text: &str) -> Engine {
        Engine::new(parse_strategy(text).unwrap(), 42)
    }

    #[test]
    fn identity_passes_everything() {
        let mut e = Engine::new(Strategy::identity(), 1);
        let out = e.apply_outbound(&syn_ack());
        assert_eq!(out, vec![syn_ack()]);
    }

    #[test]
    fn non_matching_trigger_passes_through() {
        let mut e = engine("[TCP:flags:R]-drop-| \\/ ");
        assert_eq!(e.apply_outbound(&syn_ack()).len(), 1);
    }

    #[test]
    fn strategy_1_emits_rst_then_syn() {
        let mut e = engine(
            "[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},tamper{TCP:flags:replace:S})-| \\/ ",
        );
        let out = e.apply_outbound(&syn_ack());
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].flags(), TcpFlags::RST);
        assert_eq!(out[1].flags(), TcpFlags::SYN);
        // Tampering a non-derived field re-finalizes: checksums valid.
        assert!(out[0].checksums_ok());
        assert!(out[1].checksums_ok());
        // Sequence numbers preserved from the original SYN+ACK.
        assert_eq!(out[1].tcp_header().unwrap().seq, 9000);
    }

    #[test]
    fn corrupt_ack_produces_valid_packet_with_random_ack() {
        let mut e = engine("[TCP:flags:SA]-duplicate(tamper{TCP:ack:corrupt},)-| \\/ ");
        let out = e.apply_outbound(&syn_ack());
        assert_eq!(out.len(), 2);
        assert_ne!(out[0].tcp_header().unwrap().ack, 1001);
        assert!(out[0].checksums_ok(), "corrupt ack must still checksum");
        assert_eq!(out[1], syn_ack());
    }

    #[test]
    fn corrupt_checksum_stays_broken() {
        let mut e = engine("[TCP:flags:SA]-tamper{TCP:chksum:corrupt}-| \\/ ");
        let out = e.apply_outbound(&syn_ack());
        assert_eq!(out.len(), 1);
        // With overwhelming probability the random checksum is wrong;
        // the seed is fixed, so this is deterministic.
        assert!(!out[0].checksums_ok());
    }

    #[test]
    fn corrupt_load_on_empty_packet_invents_payload() {
        let mut e = engine("[TCP:flags:SA]-tamper{TCP:load:corrupt}-| \\/ ");
        let out = e.apply_outbound(&syn_ack());
        assert!(!out[0].payload.is_empty());
        assert!(out[0].checksums_ok());
    }

    #[test]
    fn corrupt_is_deterministic_per_seed() {
        let out1 =
            engine("[TCP:flags:SA]-tamper{TCP:ack:corrupt}-| \\/ ").apply_outbound(&syn_ack());
        let out2 =
            engine("[TCP:flags:SA]-tamper{TCP:ack:corrupt}-| \\/ ").apply_outbound(&syn_ack());
        assert_eq!(out1, out2);
        let mut e3 = Engine::new(
            parse_strategy("[TCP:flags:SA]-tamper{TCP:ack:corrupt}-| \\/ ").unwrap(),
            43,
        );
        assert_ne!(out1, e3.apply_outbound(&syn_ack()));
    }

    #[test]
    fn window_reduction_strips_wscale() {
        let mut e = engine(
            "[TCP:flags:SA]-tamper{TCP:window:replace:10}(tamper{TCP:options-wscale:replace:},)-| \\/ ",
        );
        let out = e.apply_outbound(&syn_ack());
        assert_eq!(out.len(), 1);
        let tcp = out[0].tcp_header().unwrap();
        assert_eq!(tcp.window, 10);
        assert!(tcp.option("wscale").is_none());
        assert!(tcp.option("mss").is_some(), "mss must survive");
        assert!(out[0].checksums_ok());
    }

    #[test]
    fn drop_swallows() {
        let mut e = engine("[TCP:flags:SA]-drop-| \\/ ");
        assert!(e.apply_outbound(&syn_ack()).is_empty());
    }

    #[test]
    fn tcp_segmentation_splits_payload_and_seq() {
        let mut pkt = syn_ack();
        pkt.tcp_header_mut().unwrap().flags = TcpFlags::PSH_ACK;
        pkt.payload = b"GET /?q=ultrasurf HTTP/1.1\r\n\r\n".to_vec().into();
        pkt.finalize();
        let mut e = engine("[TCP:flags:PA]-fragment{TCP:10:True}(,)-| \\/ ");
        let out = e.apply_outbound(&pkt);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].payload, b"GET /?q=ul");
        assert_eq!(out[1].payload, b"trasurf HTTP/1.1\r\n\r\n");
        assert_eq!(
            out[1].tcp_header().unwrap().seq,
            out[0].tcp_header().unwrap().seq + 10
        );
        assert!(out.iter().all(|p| p.checksums_ok()));
    }

    #[test]
    fn out_of_order_segmentation_swaps_emission() {
        let mut pkt = syn_ack();
        pkt.tcp_header_mut().unwrap().flags = TcpFlags::PSH_ACK;
        pkt.payload = b"abcdefgh".to_vec().into();
        pkt.finalize();
        let mut e = engine("[TCP:flags:PA]-fragment{TCP:4:False}(,)-| \\/ ");
        let out = e.apply_outbound(&pkt);
        assert_eq!(out[0].payload, b"efgh");
        assert_eq!(out[1].payload, b"abcd");
    }

    #[test]
    fn strategy_9_triple_load() {
        let mut e =
            engine("[TCP:flags:SA]-tamper{TCP:load:corrupt}(duplicate(duplicate,),)-| \\/ ");
        let out = e.apply_outbound(&syn_ack());
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|p| !p.payload.is_empty()));
        assert!(out.iter().all(|p| p.flags().is_syn_ack()));
        // All three copies carry the SAME payload (tamper before the
        // duplicates) — the paper notes the strategy needs a payload on
        // every copy.
        assert_eq!(out[0].payload, out[1].payload);
        assert_eq!(out[1].payload, out[2].payload);
    }

    #[test]
    fn strategy_6_shape() {
        let mut e = engine(
            "[TCP:flags:SA]-duplicate(duplicate(tamper{TCP:flags:replace:F}(tamper{TCP:load:corrupt},),tamper{TCP:ack:corrupt}),)-| \\/ ",
        );
        let out = e.apply_outbound(&syn_ack());
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].flags(), TcpFlags::FIN);
        assert!(!out[0].payload.is_empty());
        assert!(out[1].flags().is_syn_ack());
        assert_ne!(out[1].tcp_header().unwrap().ack, 1001, "corrupted ack");
        assert_eq!(out[2], syn_ack(), "original rides last");
    }

    #[test]
    fn application_layer_tamper_rewrites_dns_qname() {
        // The appendix extension: tamper supports DNS fields. Rewrite
        // the query name of any DNS packet heading to port 53.
        let mut e = engine("[UDP:dport:53]-tamper{DNS:qname:replace:example.org}-| \\/ ");
        let mut query = Packet::udp([10, 0, 0, 1], 40000, [8, 8, 8, 8], 53, {
            // A raw DNS query for a forbidden name.
            let mut msg = vec![0x12, 0x34, 0x01, 0x00, 0, 1, 0, 0, 0, 0, 0, 0];
            msg.extend_from_slice(b"\x03www\x09wikipedia\x03org\x00");
            msg.extend_from_slice(&[0, 1, 0, 1]);
            msg
        });
        query.finalize();
        let out = e.apply_outbound(&query);
        assert_eq!(out.len(), 1);
        assert_eq!(
            packet::appfield::dns_qname(&out[0]).as_deref(),
            Some("example.org")
        );
        assert!(out[0].checksums_ok(), "tamper re-finalizes");
    }

    #[test]
    fn application_layer_tamper_rewrites_ftp_command() {
        let mut e = engine("[TCP:dport:21]-tamper{FTP:command:replace:RETR readme.txt}-| \\/ ");
        let mut cmd = Packet::tcp(
            [10, 0, 0, 1],
            40000,
            [20, 0, 0, 9],
            21,
            TcpFlags::PSH_ACK,
            1,
            2,
            b"RETR ultrasurf\r\n".to_vec(),
        );
        cmd.finalize();
        let out = e.apply_outbound(&cmd);
        assert_eq!(out[0].payload, b"RETR readme.txt\r\n");
    }

    #[test]
    fn inbound_rules_apply_to_received_packets() {
        let mut e = engine(" \\/ [TCP:flags:R]-drop-|");
        let rst = Packet::tcp([1; 4], 1, [2; 4], 2, TcpFlags::RST, 0, 0, vec![]);
        assert!(e.apply_inbound(&rst).is_empty());
        assert_eq!(e.apply_inbound(&syn_ack()).len(), 1);
        assert_eq!(e.apply_outbound(&rst).len(), 1, "outbound untouched");
    }
}
