//! Strategy abstract syntax: triggers and action trees.
//!
//! The tree shape mirrors Geneva's genetic encoding so the `evolve`
//! crate can mutate and crossover nodes directly: `duplicate` and
//! `fragment` are binary, `tamper` is unary, `send` and `drop` are
//! leaves. `Display` renders canonical DSL text; `parser::parse_strategy`
//! inverts it.

use packet::field::{FieldRef, FieldValue};
use packet::Proto;

/// A byte range into strategy source text. Produced by the parser for
/// every AST node (in preorder), consumed by `strata` diagnostics and
/// by `ParseError`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// First byte of the region.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// A span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Span {
        debug_assert!(start <= end, "inverted span {start}..{end}");
        Span { start, end }
    }

    /// A zero-width span at `at` (implicit `send` slots, EOF errors).
    pub fn point(at: usize) -> Span {
        Span { start: at, end: at }
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// How `tamper` rewrites its field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TamperMode {
    /// Set the field to a specific value (empty value = clear/remove).
    Replace(FieldValue),
    /// Set the field to random bits of the same width.
    Corrupt,
}

/// One node of an action tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Transmit the packet as-is. The leaf default: an omitted subtree
    /// means `send`.
    Send,
    /// Discard the packet.
    Drop,
    /// Copy the packet; run the first subtree on the copy, the second
    /// on the original, emitting the copy's packets first.
    Duplicate(Box<Action>, Box<Action>),
    /// Rewrite one field, then continue with the subtree.
    Tamper {
        /// Which field to rewrite.
        field: FieldRef,
        /// Replace or corrupt.
        mode: TamperMode,
        /// Continuation (usually `Send`).
        next: Box<Action>,
    },
    /// Split the packet in two at `offset` payload bytes (TCP
    /// segmentation) or 8-byte units (IP fragmentation), delivering
    /// in order or swapped.
    Fragment {
        /// `TCP` = segmentation, `IP` = fragmentation.
        proto: Proto,
        /// Split point: payload bytes (TCP) — clamped to the payload.
        offset: usize,
        /// Deliver first-half-first when true.
        in_order: bool,
        /// Subtree for the first piece.
        first: Box<Action>,
        /// Subtree for the second piece.
        second: Box<Action>,
    },
}

impl Action {
    /// Convenience: `tamper{field:replace:value}(send)`.
    pub fn replace(field: &str, value: FieldValue) -> Action {
        Action::Tamper {
            field: FieldRef::parse(field).expect("valid field name"),
            mode: TamperMode::Replace(value),
            next: Box::new(Action::Send),
        }
    }

    /// Convenience: `tamper{field:corrupt}(send)`.
    pub fn corrupt(field: &str) -> Action {
        Action::Tamper {
            field: FieldRef::parse(field).expect("valid field name"),
            mode: TamperMode::Corrupt,
            next: Box::new(Action::Send),
        }
    }

    /// Visit this subtree in preorder (node before children, children
    /// left to right) — the same order the parser records spans in, so
    /// the n-th visited node pairs with the n-th span of its part.
    pub fn walk<'a>(&'a self, visit: &mut impl FnMut(&'a Action)) {
        visit(self);
        match self {
            Action::Send | Action::Drop => {}
            Action::Tamper { next, .. } => next.walk(visit),
            Action::Duplicate(a, b) => {
                a.walk(visit);
                b.walk(visit);
            }
            Action::Fragment { first, second, .. } => {
                first.walk(visit);
                second.walk(visit);
            }
        }
    }

    /// Number of nodes in this subtree (complexity metric for the GA's
    /// parsimony pressure).
    pub fn size(&self) -> usize {
        match self {
            Action::Send | Action::Drop => 1,
            Action::Tamper { next, .. } => 1 + next.size(),
            Action::Duplicate(a, b) => 1 + a.size() + b.size(),
            Action::Fragment { first, second, .. } => 1 + first.size() + second.size(),
        }
    }
}

impl std::fmt::Display for Action {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Action::Send => write!(f, "send"),
            Action::Drop => write!(f, "drop"),
            Action::Duplicate(a, b) => {
                write!(f, "duplicate({},{})", SubAction(a), SubAction(b))
            }
            Action::Tamper { field, mode, next } => {
                match mode {
                    TamperMode::Replace(value) => write!(
                        f,
                        "tamper{{{}:replace:{}}}",
                        field.to_syntax(),
                        value.to_syntax()
                    )?,
                    TamperMode::Corrupt => write!(f, "tamper{{{}:corrupt}}", field.to_syntax())?,
                }
                if !matches!(**next, Action::Send) {
                    write!(f, "({})", SubAction(next))?;
                }
                Ok(())
            }
            Action::Fragment {
                proto,
                offset,
                in_order,
                first,
                second,
            } => write!(
                f,
                "fragment{{{}:{}:{}}}({},{})",
                proto.token(),
                offset,
                if *in_order { "True" } else { "False" },
                SubAction(first),
                SubAction(second)
            ),
        }
    }
}

/// Renders `send` as the empty string inside argument lists, matching
/// Geneva's compact syntax (`duplicate(,tamper{...})`).
struct SubAction<'a>(&'a Action);

impl std::fmt::Display for SubAction<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if matches!(self.0, Action::Send) {
            Ok(())
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// A trigger: apply the action tree to packets whose `field` exactly
/// equals `value` (Geneva demands exact matches — `TCP:flags:SA` does
/// not match a bare SYN).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trigger {
    /// The matched field.
    pub field: FieldRef,
    /// The exact value, in field syntax (e.g. `SA`, `80`).
    pub value: String,
}

impl Trigger {
    /// `TCP:flags:<flags>` — the trigger every server-side strategy in
    /// the paper uses (on SYN+ACK).
    pub fn tcp_flags(flags: &str) -> Trigger {
        Trigger {
            field: FieldRef::parse("TCP:flags").expect("valid"),
            value: flags.to_string(),
        }
    }

    /// Does this packet match?
    pub fn matches(&self, pkt: &packet::Packet) -> bool {
        match self.field.get(pkt) {
            Ok(value) => value.to_syntax() == self.value,
            Err(_) => false,
        }
    }
}

impl std::fmt::Display for Trigger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}:{}]", self.field.to_syntax(), self.value)
    }
}

/// One `trigger ⇒ action` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrategyPart {
    /// When to fire.
    pub trigger: Trigger,
    /// What to do.
    pub action: Action,
}

impl std::fmt::Display for StrategyPart {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-{}-|", self.trigger, self.action)
    }
}

/// A complete strategy: outbound pairs, then inbound pairs, separated
/// by `\/` in the DSL.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Strategy {
    /// Applied to packets this host emits.
    pub outbound: Vec<StrategyPart>,
    /// Applied to packets this host receives (before the stack).
    pub inbound: Vec<StrategyPart>,
}

impl Strategy {
    /// The identity strategy (forward everything untouched).
    pub fn identity() -> Strategy {
        Strategy::default()
    }

    /// Total node count across all action trees.
    pub fn size(&self) -> usize {
        self.outbound
            .iter()
            .chain(&self.inbound)
            .map(|p| p.action.size())
            .sum()
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for part in &self.outbound {
            write!(f, "{part}")?;
        }
        write!(f, " \\/ ")?;
        for part in &self.inbound {
            write!(f, "{part}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;
    use packet::{Packet, TcpFlags};

    fn syn_ack() -> Packet {
        Packet::tcp(
            [1, 1, 1, 1],
            80,
            [2, 2, 2, 2],
            999,
            TcpFlags::SYN_ACK,
            5,
            6,
            vec![],
        )
    }

    #[test]
    fn trigger_exact_match_semantics() {
        let t = Trigger::tcp_flags("SA");
        assert!(t.matches(&syn_ack()));
        let syn_only = Packet::tcp([1; 4], 80, [2; 4], 9, TcpFlags::SYN, 0, 0, vec![]);
        assert!(!t.matches(&syn_only), "SA must not match bare SYN");
        let t_syn = Trigger::tcp_flags("S");
        assert!(t_syn.matches(&syn_only));
        assert!(!t_syn.matches(&syn_ack()));
    }

    #[test]
    fn display_strategy_1_matches_paper_syntax() {
        let strategy = Strategy {
            outbound: vec![StrategyPart {
                trigger: Trigger::tcp_flags("SA"),
                action: Action::Duplicate(
                    Box::new(Action::replace(
                        "TCP:flags",
                        packet::FieldValue::Str("R".into()),
                    )),
                    Box::new(Action::replace(
                        "TCP:flags",
                        packet::FieldValue::Str("S".into()),
                    )),
                ),
            }],
            inbound: vec![],
        };
        assert_eq!(
            strategy.to_string(),
            "[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},tamper{TCP:flags:replace:S})-| \\/ "
        );
    }

    #[test]
    fn send_renders_empty_in_arg_lists() {
        let action =
            Action::Duplicate(Box::new(Action::Send), Box::new(Action::corrupt("TCP:ack")));
        assert_eq!(action.to_string(), "duplicate(,tamper{TCP:ack:corrupt})");
    }

    #[test]
    fn size_counts_nodes() {
        let action = Action::Duplicate(
            Box::new(Action::Send),
            Box::new(Action::Tamper {
                field: FieldRef::parse("TCP:ack").unwrap(),
                mode: TamperMode::Corrupt,
                next: Box::new(Action::Drop),
            }),
        );
        assert_eq!(action.size(), 4);
    }
}
