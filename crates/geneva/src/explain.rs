//! Human-readable strategy explanations.
//!
//! Evolved strategies come out of the GA as raw DSL; the paper spends
//! §5 translating each one into prose ("duplicates the SYN+ACK; the
//! first copy becomes a RST, the second a SYN…"). This module does the
//! first-order version of that translation mechanically, which makes
//! `cay strategies` and the evolution example self-describing.

use crate::ast::{Action, Strategy, TamperMode};
use packet::field::FieldValue;

/// Explain a whole strategy in prose.
pub fn explain(strategy: &Strategy) -> String {
    if strategy.outbound.is_empty() && strategy.inbound.is_empty() {
        return "Do nothing (no evasion).".to_string();
    }
    let mut out = String::new();
    for part in &strategy.outbound {
        out.push_str(&format!(
            "On outbound {} packets: {}.\n",
            trigger_phrase(&part.trigger.value),
            explain_action(&part.action)
        ));
    }
    for part in &strategy.inbound {
        out.push_str(&format!(
            "On inbound {} packets: {}.\n",
            trigger_phrase(&part.trigger.value),
            explain_action(&part.action)
        ));
    }
    out
}

fn trigger_phrase(value: &str) -> String {
    match value {
        "SA" => "SYN+ACK".to_string(),
        "S" => "SYN".to_string(),
        "A" => "ACK".to_string(),
        "PA" => "PSH+ACK".to_string(),
        other => format!("flags={other}"),
    }
}

/// Explain one action subtree.
pub fn explain_action(action: &Action) -> String {
    match action {
        Action::Send => "send it unchanged".to_string(),
        Action::Drop => "drop it".to_string(),
        Action::Duplicate(a, b) => format!(
            "make two copies — first: {}; second: {}",
            explain_action(a),
            explain_action(b)
        ),
        Action::Tamper { field, mode, next } => {
            let what = match mode {
                TamperMode::Corrupt => format!("corrupt {}", field_phrase(&field.to_syntax())),
                TamperMode::Replace(FieldValue::Empty) => {
                    format!("clear {}", field_phrase(&field.to_syntax()))
                }
                TamperMode::Replace(value) => format!(
                    "set {} to {:?}",
                    field_phrase(&field.to_syntax()),
                    value.to_syntax()
                ),
            };
            match &**next {
                Action::Send => format!("{what}, then send"),
                next => format!("{what}, then {}", explain_action(next)),
            }
        }
        Action::Fragment {
            proto,
            offset,
            in_order,
            first,
            second,
        } => {
            format!(
            "split it at the {} layer at offset {offset} ({}), first piece: {}; second piece: {}",
            proto.token(),
            if *in_order { "in order" } else { "out of order" },
            explain_action(first),
            explain_action(second)
        )
        }
    }
}

fn field_phrase(field: &str) -> String {
    match field {
        "TCP:flags" => "the TCP flags".to_string(),
        "TCP:ack" => "the acknowledgment number".to_string(),
        "TCP:seq" => "the sequence number".to_string(),
        "TCP:load" => "the payload".to_string(),
        "TCP:window" => "the advertised window".to_string(),
        "TCP:chksum" => "the TCP checksum".to_string(),
        "TCP:options-wscale" => "the window-scale option".to_string(),
        "IP:ttl" => "the IP TTL".to_string(),
        "DNS:qname" => "the DNS query name".to_string(),
        "FTP:command" => "the FTP command".to_string(),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;
    use crate::library;
    use crate::parse_strategy;

    #[test]
    fn explains_strategy_1_like_the_paper() {
        let text = explain(&library::STRATEGY_1.strategy());
        assert!(text.contains("On outbound SYN+ACK packets"), "{text}");
        assert!(text.contains("two copies"), "{text}");
        assert!(
            text.to_lowercase().contains("set the tcp flags to \"r\""),
            "{text}"
        );
        assert!(
            text.to_lowercase().contains("set the tcp flags to \"s\""),
            "{text}"
        );
    }

    #[test]
    fn explains_strategy_8() {
        let text = explain(&library::STRATEGY_8.strategy());
        assert!(text.contains("advertised window"), "{text}");
        assert!(text.contains("clear the window-scale option"), "{text}");
    }

    #[test]
    fn explains_every_library_strategy_without_panicking() {
        for named in library::server_side() {
            let text = explain(&named.strategy());
            assert!(!text.is_empty());
        }
        for named in library::variants() {
            let _ = explain(&named.strategy());
        }
        for named in library::client_side() {
            let _ = explain(&named.strategy());
        }
    }

    #[test]
    fn identity_and_drop_read_naturally() {
        assert_eq!(explain(&Strategy::identity()), "Do nothing (no evasion).");
        let s = parse_strategy("[TCP:flags:R]-drop-| \\/ ").unwrap();
        assert!(explain(&s).contains("drop it"));
    }
}
