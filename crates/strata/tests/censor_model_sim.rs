#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
//! Abstraction-soundness differential: random concrete packet traces
//! are replayed through both the real `censor` `Middlebox` models and
//! the `strata::censor_model` abstract automata, asserting simulation
//! — whenever the abstract state makes a must-claim (the flow is
//! provably ignored / provably still monitored), the concrete censor
//! agrees. Any contradiction proptest-minimizes into a counterexample
//! trace.
//!
//! The probe at the end of every trace is the observable: Kazakhstan's
//! per-flow `ignored` bit is private, but an ignored flow *forwards*
//! a forbidden client request without a censorship event, and a
//! monitored flow drops it and injects a block page.

use censor::{AirtelCensor, IranCensor, KazakhstanCensor};
use netsim::{Direction, Middlebox, Verdict};
use packet::{Packet, TcpFlags};
use proptest::prelude::*;
use strata::censor_model::{automaton, AbsDirection, AbsPacket, AbsState, CensorId, Tri};

const CLIENT: ([u8; 4], u16) = ([10, 0, 0, 1], 40000);
const SERVER: ([u8; 4], u16) = ([20, 0, 0, 9], 80);
const FORBIDDEN_REQUEST: &[u8] = b"GET http://youtube.com/ HTTP/1.1\r\nHost: youtube.com\r\n\r\n";

/// One trace step: a packet crossing the censor in either direction.
#[derive(Debug, Clone)]
struct Step {
    to_client: bool,
    flags: u8,
    payload: Vec<u8>,
}

fn payload_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        Just(Vec::new()),
        proptest::collection::vec(any::<u8>(), 1..24),
        Just(b"GET / HTTP1.1\r\n".to_vec()),
        Just(b"GET /watch HTTP/1.0\r\n".to_vec()),
        Just(FORBIDDEN_REQUEST.to_vec()),
        Just(b"hello world".to_vec()),
        Just(b"GET".to_vec()),
    ]
}

fn step_strategy() -> impl Strategy<Value = Step> {
    (any::<bool>(), any::<u8>(), payload_strategy()).prop_map(|(to_client, flags, payload)| Step {
        to_client,
        flags,
        payload,
    })
}

fn build(step: &Step, seq: u32) -> (Packet, Direction) {
    let (from, to, dir) = if step.to_client {
        (SERVER, CLIENT, Direction::ToClient)
    } else {
        (CLIENT, SERVER, Direction::ToServer)
    };
    let mut pkt = Packet::tcp(
        from.0,
        from.1,
        to.0,
        to.1,
        TcpFlags(step.flags),
        seq,
        77,
        step.payload.clone(),
    );
    pkt.finalize();
    (pkt, dir)
}

/// Degrade exact packet facts to `Maybe`/unknown according to a mask:
/// the automaton must stay sound no matter how little it knows.
fn blur(pkt: &AbsPacket, mask: u8) -> AbsPacket {
    let mut out = *pkt;
    if mask & 1 != 0 {
        out.flags = None;
    }
    if mask & 2 != 0 {
        out.payload = Tri::Maybe;
    }
    if mask & 4 != 0 {
        out.wellformed_get = Tri::Maybe;
    }
    if mask & 8 != 0 {
        out.forbidden = Tri::Maybe;
    }
    out
}

/// Run a trace through the concrete KZ censor and the abstract
/// automaton side by side, then probe with a forbidden client request
/// and compare claims against the observable outcome.
fn kz_differential(trace: &[Step], blur_mask: u8) {
    let kz = automaton(CensorId::Kazakhstan);
    let mut concrete = KazakhstanCensor::new();
    let mut state = kz.initial();
    let mut now = 0u64;
    for (i, step) in trace.iter().enumerate() {
        // Mid-trace client payloads stay benign so the probe at the
        // end is the only possible censorship event.
        if !step.to_client && step.payload == FORBIDDEN_REQUEST {
            continue;
        }
        let (pkt, dir) = build(step, 1000 + i as u32);
        let abs_dir = if step.to_client {
            AbsDirection::ToClient
        } else {
            AbsDirection::ToServer
        };
        let abs = blur(&AbsPacket::of_packet(&pkt, abs_dir), blur_mask);
        concrete.process(&pkt, dir, now);
        kz.step(&mut state, &abs);
        now += 1000;
    }
    let AbsState::Kz(flow) = state else {
        panic!("KZ automaton must track a KzAbstractFlow");
    };

    let probe = Step {
        to_client: false,
        flags: TcpFlags::PSH_ACK.0,
        payload: FORBIDDEN_REQUEST.to_vec(),
    };
    let (pkt, dir) = build(&probe, 9000);
    let verdict: Verdict = concrete.process(&pkt, dir, now);
    let concretely_ignored = verdict.forward.is_some();

    if flow.must_ignored() {
        assert!(
            concretely_ignored,
            "abstract flow provably ignored, concrete censor still censored: {flow:?}"
        );
        assert_eq!(
            concrete.censor_events, 0,
            "provably-ignored flow produced censorship events"
        );
    }
    if !flow.may_ignored() {
        assert!(
            !concretely_ignored,
            "abstract flow provably monitored, concrete censor ignored it: {flow:?}"
        );
        assert_eq!(concrete.censor_events, 1);
        assert_eq!(verdict.inject_to_client.len(), 1, "block page expected");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Exact packet facts: the abstract KZ monitor simulates the
    /// concrete one on arbitrary handshake traces.
    #[test]
    fn kz_abstract_flow_simulates_concrete(trace in proptest::collection::vec(step_strategy(), 0..12)) {
        kz_differential(&trace, 0);
    }

    /// Blurred facts: knowing less may only widen the abstract state,
    /// never break simulation.
    #[test]
    fn kz_abstract_flow_stays_sound_under_blurring(
        trace in proptest::collection::vec(step_strategy(), 0..12),
        mask in 0u8..16,
    ) {
        kz_differential(&trace, mask);
    }

    /// The stateless censors' automata claim `tracks_streams: false`
    /// and to-server-only observation: no amount of server→client
    /// garbage (or benign client traffic) may change how they treat a
    /// subsequent forbidden request.
    #[test]
    fn stateless_censors_ignore_prior_traffic(trace in proptest::collection::vec(step_strategy(), 0..10)) {
        let mut iran = IranCensor::new();
        let mut airtel = AirtelCensor::new();
        let mut now = 0u64;
        for (i, step) in trace.iter().enumerate() {
            if !step.to_client && step.payload == FORBIDDEN_REQUEST {
                continue;
            }
            let (pkt, dir) = build(step, 2000 + i as u32);
            iran.process(&pkt, dir, now);
            airtel.process(&pkt, dir, now);
            now += 1000;
        }
        let probe = Step { to_client: false, flags: TcpFlags::PSH_ACK.0, payload: FORBIDDEN_REQUEST.to_vec() };
        let (pkt, dir) = build(&probe, 9000);

        // Iran: on-path blackhole — the request is dropped, nothing
        // is injected (automaton: injects nothing).
        let v = iran.process(&pkt, dir, now);
        prop_assert!(v.forward.is_none());
        prop_assert!(v.inject_to_client.is_empty() && v.inject_to_server.is_empty());
        prop_assert_eq!(iran.censor_events, 1);

        // Airtel: stateless injector — the request is forwarded, the
        // client gets a block page and a RST (automaton:
        // injects_block_page + injects_rst_to_client).
        let v = airtel.process(&pkt, dir, now);
        prop_assert!(v.forward.is_some());
        prop_assert_eq!(v.inject_to_client.len(), 2);
        prop_assert!(v.inject_to_server.is_empty());
        prop_assert_eq!(airtel.censor_events, 1);
    }
}

/// The declarative injection facts match one concrete censorship
/// event per censor (the automaton rows `lints` stands down on).
#[test]
fn automaton_injection_facts_match_concrete_censors() {
    let probe = Step {
        to_client: false,
        flags: TcpFlags::PSH_ACK.0,
        payload: FORBIDDEN_REQUEST.to_vec(),
    };
    let (pkt, dir) = build(&probe, 1);

    let a = automaton(CensorId::Airtel);
    let v = AirtelCensor::new().process(&pkt, dir, 0);
    let injected_rst = v.inject_to_client.iter().any(|p| {
        p.tcp_header()
            .is_some_and(|t| t.flags.contains(TcpFlags::RST))
    });
    assert_eq!(a.injects_rst_to_client, injected_rst);
    assert!(a.injects_block_page);
    assert!(!a.injects_rst_to_server && v.inject_to_server.is_empty());

    let i = automaton(CensorId::Iran);
    let v = IranCensor::new().process(&pkt, dir, 0);
    assert!(!i.injects_rst_to_client && !i.injects_block_page);
    assert!(v.inject_to_client.is_empty() && v.inject_to_server.is_empty());

    let k = automaton(CensorId::Kazakhstan);
    let v = KazakhstanCensor::new().process(&pkt, dir, 0);
    assert!(k.injects_block_page && !k.injects_rst_to_client);
    assert_eq!(v.inject_to_client.len(), 1);
    let page = v.inject_to_client[0].tcp_header().unwrap();
    assert!(!page.flags.contains(TcpFlags::RST));
}

/// GFW teardown RSTs fly both ways on a censorship event — the fact
/// the `deliverable-rst-resets-client` stand-down keys on.
#[test]
fn gfw_automaton_matches_multibox_injection() {
    let g = automaton(CensorId::Gfw);
    assert!(g.stochastic, "no deterministic claim may survive the GFW");
    assert!(g.injects_rst_to_client && g.injects_rst_to_server);
    assert_eq!(g.resyncs_on_server_rst, Some(false));
}
