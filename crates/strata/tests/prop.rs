#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
//! Property tests for `strata::canon`.
//!
//! The two load-bearing invariants:
//!
//! 1. **Idempotence** — canonicalization is a projection:
//!    `canon(canon(s)) == canon(s)` for arbitrary strategies.
//! 2. **Semantics preservation** — running the canonical strategy
//!    through the Geneva engine produces *byte-identical* wire output
//!    to the original, for arbitrary (strategy, packet, seed) triples.
//!    This is what licenses `evolve` to key its fitness memo on
//!    [`CanonKey`]: equivalent genomes really are interchangeable.
//!
//! Each semantics case exercises one strategy against three packets
//! and two seeds, so the default 256 cases cover ≥1500 pairs.

use geneva::ast::{Action, StrategyPart, TamperMode, Trigger};
use geneva::Engine;
use packet::field::{FieldRef, FieldValue};
use packet::{Packet, TcpFlags};
use proptest::prelude::*;
use strata::{canonicalize_strategy, CanonKey};

const FIELDS: &[&str] = &[
    "TCP:flags",
    "TCP:seq",
    "TCP:ack",
    "TCP:window",
    "TCP:chksum",
    "TCP:load",
    "TCP:urgptr",
    "TCP:options-wscale",
    "TCP:options-mss",
    "IP:ttl",
    "IP:tos",
];

fn arb_value(field: &'static str) -> BoxedStrategy<FieldValue> {
    match field {
        "TCP:flags" => prop_oneof![
            Just(FieldValue::Empty),
            prop::sample::select(vec!["S", "SA", "R", "RA", "F", "A", "PA", "AS", "AR"])
                .prop_map(|s| FieldValue::Str(s.to_string())),
        ]
        .boxed(),
        "TCP:load" => prop_oneof![
            Just(FieldValue::Empty),
            Just(FieldValue::Str(String::new())),
            Just(FieldValue::Str("GET / HTTP1.".to_string())),
            prop::collection::vec(any::<u8>(), 0..6).prop_map(FieldValue::Bytes),
        ]
        .boxed(),
        "TCP:options-wscale" | "TCP:options-mss" => prop_oneof![
            Just(FieldValue::Empty),
            (0u64..1400).prop_map(FieldValue::Num),
            // Non-canonical spelling the folder should normalize.
            (0u64..1400).prop_map(|n| FieldValue::Str(n.to_string())),
        ]
        .boxed(),
        _ => prop_oneof![
            (0u64..65536).prop_map(FieldValue::Num),
            // String spellings of numbers exercise value folding.
            (0u64..65536).prop_map(|n| FieldValue::Str(n.to_string())),
        ]
        .boxed(),
    }
}

fn arb_tamper(next: BoxedStrategy<Action>) -> BoxedStrategy<Action> {
    prop::sample::select(FIELDS.to_vec())
        .prop_flat_map(move |field| {
            let next = next.clone();
            prop_oneof![
                Just(TamperMode::Corrupt),
                arb_value(field).prop_map(TamperMode::Replace),
            ]
            .prop_flat_map(move |mode| {
                let field = field;
                let mode = mode.clone();
                next.clone().prop_map(move |n| Action::Tamper {
                    field: FieldRef::parse(field).expect("valid"),
                    mode: mode.clone(),
                    next: Box::new(n),
                })
            })
        })
        .boxed()
}

fn arb_action() -> impl Strategy<Value = Action> {
    // Drop-heavy leaves so inert-subtree collapses actually trigger.
    let leaf = prop_oneof![2 => Just(Action::Send), 1 => Just(Action::Drop)].boxed();
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            2 => arb_tamper(inner.clone()),
            2 => (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Action::Duplicate(Box::new(a), Box::new(b))),
            1 => (1usize..20, any::<bool>(), inner.clone(), inner)
                .prop_map(|(offset, in_order, a, b)| Action::Fragment {
                    proto: packet::Proto::Tcp,
                    offset,
                    in_order,
                    first: Box::new(a),
                    second: Box::new(b),
                }),
        ]
        .boxed()
    })
}

fn arb_strategy() -> impl Strategy<Value = geneva::Strategy> {
    (arb_action(), arb_action()).prop_map(|(a, b)| geneva::Strategy {
        outbound: vec![
            StrategyPart {
                trigger: Trigger::tcp_flags("SA"),
                action: a,
            },
            StrategyPart {
                trigger: Trigger::tcp_flags("PA"),
                action: b,
            },
        ],
        inbound: vec![],
    })
}

/// The packets every semantics case runs: a SYN+ACK with options (the
/// trigger every paper strategy uses), a payload-bearing data segment,
/// and a packet matching no trigger at all.
fn test_packets() -> Vec<Packet> {
    let mut syn_ack = Packet::tcp(
        [20, 0, 0, 9],
        80,
        [10, 0, 0, 1],
        40000,
        TcpFlags::SYN_ACK,
        9000,
        1001,
        vec![],
    );
    syn_ack.tcp_header_mut().expect("tcp").options = vec![
        packet::TcpOption::Mss(1460),
        packet::TcpOption::WindowScale(7),
    ];
    syn_ack.finalize();

    let mut data = Packet::tcp(
        [20, 0, 0, 9],
        80,
        [10, 0, 0, 1],
        40000,
        TcpFlags::PSH_ACK,
        9001,
        1001,
        b"HTTP/1.1 200 OK\r\n\r\nhello".to_vec(),
    );
    data.finalize();

    let mut ack = Packet::tcp(
        [20, 0, 0, 9],
        80,
        [10, 0, 0, 1],
        40000,
        TcpFlags::ACK,
        9002,
        1002,
        vec![],
    );
    ack.finalize();

    vec![syn_ack, data, ack]
}

fn wire_bytes(strategy: &geneva::Strategy, pkt: &Packet, seed: u64) -> Vec<Vec<u8>> {
    let mut engine = Engine::new(strategy.clone(), seed);
    engine
        .apply_outbound(pkt)
        .iter()
        .map(Packet::serialize_raw)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn canonicalize_is_idempotent(strategy in arb_strategy()) {
        let once = canonicalize_strategy(&strategy);
        let twice = canonicalize_strategy(&once);
        prop_assert_eq!(&once, &twice, "not a fixed point: {}", once);
        prop_assert_eq!(CanonKey::of(&once), CanonKey::of(&twice));
    }

    #[test]
    fn canonicalize_preserves_engine_semantics(
        strategy in arb_strategy(),
        seed in any::<u64>(),
    ) {
        let canonical = canonicalize_strategy(&strategy);
        for pkt in test_packets() {
            for s in [seed, seed ^ 0x9e37_79b9_7f4a_7c15] {
                let original = wire_bytes(&strategy, &pkt, s);
                let canon = wire_bytes(&canonical, &pkt, s);
                prop_assert_eq!(
                    &original,
                    &canon,
                    "strategy `{}` vs canonical `{}` diverge on seed {}",
                    strategy,
                    canonical,
                    s
                );
            }
        }
    }

    #[test]
    fn canonical_key_is_engine_stable(strategy in arb_strategy(), seed in any::<u64>()) {
        // Same key ⟹ same canonical text ⟹ (by the test above) same
        // wire behavior. Here we check the cheap direction: the key of
        // a canonicalized strategy never changes under re-canonicalization.
        let canonical = canonicalize_strategy(&strategy);
        let _ = seed;
        prop_assert_eq!(CanonKey::of(&canonicalize_strategy(&canonical)), CanonKey::of(&canonical));
    }
}
