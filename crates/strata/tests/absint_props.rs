#![allow(clippy::unwrap_used)] // test code
//! Property tests for `strata::absint` front end B.
//!
//! The load-bearing invariant: a strategy's [`StrategySummary`] is a
//! function of its *canonical* form — computing the summary before or
//! after canonicalization, or on any equivalent spelling (dead genetic
//! material appended, shadowed parts inserted), yields the identical
//! summary. This is what licenses consumers to share summaries across
//! every member of a [`CanonKey`] equivalence class.

use geneva::ast::{Action, StrategyPart, TamperMode, Trigger};
use packet::field::{FieldRef, FieldValue};
use proptest::prelude::*;
use strata::{canonicalize_strategy, summarize};

const FIELDS: &[&str] = &[
    "TCP:flags",
    "TCP:seq",
    "TCP:ack",
    "TCP:window",
    "TCP:chksum",
    "TCP:load",
    "TCP:urgptr",
    "TCP:options-wscale",
    "IP:ttl",
];

fn arb_value(field: &'static str) -> BoxedStrategy<FieldValue> {
    match field {
        "TCP:flags" => prop::sample::select(vec!["S", "SA", "R", "RA", "A", "PA"])
            .prop_map(|s| FieldValue::Str(s.to_string()))
            .boxed(),
        "TCP:load" => prop_oneof![
            Just(FieldValue::Empty),
            Just(FieldValue::Str("x".to_string())),
        ]
        .boxed(),
        _ => prop_oneof![
            (0u64..65536).prop_map(FieldValue::Num),
            // String spellings of numbers exercise value folding.
            (0u64..65536).prop_map(|n| FieldValue::Str(n.to_string())),
        ]
        .boxed(),
    }
}

fn arb_action() -> impl Strategy<Value = Action> {
    let leaf = prop_oneof![2 => Just(Action::Send), 1 => Just(Action::Drop)].boxed();
    leaf.prop_recursive(3, 24, 4, |inner| {
        let tamper = prop::sample::select(FIELDS.to_vec()).prop_flat_map({
            let inner = inner.clone();
            move |field| {
                let inner = inner.clone();
                prop_oneof![
                    Just(TamperMode::Corrupt),
                    arb_value(field).prop_map(TamperMode::Replace),
                ]
                .prop_flat_map(move |mode| {
                    let mode = mode.clone();
                    inner.clone().prop_map(move |n| Action::Tamper {
                        field: FieldRef::parse(field).expect("valid"),
                        mode: mode.clone(),
                        next: Box::new(n),
                    })
                })
            }
        });
        prop_oneof![
            2 => tamper,
            2 => (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Action::Duplicate(Box::new(a), Box::new(b))),
            1 => (1usize..20, any::<bool>(), inner.clone(), inner)
                .prop_map(|(offset, in_order, a, b)| Action::Fragment {
                    proto: packet::Proto::Tcp,
                    offset,
                    in_order,
                    first: Box::new(a),
                    second: Box::new(b),
                }),
        ]
        .boxed()
    })
}

fn arb_strategy() -> impl Strategy<Value = geneva::Strategy> {
    (arb_action(), arb_action()).prop_map(|(a, b)| geneva::Strategy {
        outbound: vec![
            StrategyPart {
                trigger: Trigger::tcp_flags("SA"),
                action: a,
            },
            StrategyPart {
                trigger: Trigger::tcp_flags("PA"),
                action: b,
            },
        ],
        inbound: vec![],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn summaries_are_invariant_under_canonicalization(strategy in arb_strategy()) {
        let direct = summarize(&strategy);
        let canonical = canonicalize_strategy(&strategy);
        let via_canonical = summarize(&canonical);
        prop_assert_eq!(&direct, &via_canonical,
            "summary changed across canonicalization of `{}`", strategy);
        // The summary's key IS the canonical key.
        prop_assert_eq!(direct.key, strata::CanonKey::of(&canonical));
    }

    #[test]
    fn dead_genetic_material_never_changes_the_summary(strategy in arb_strategy()) {
        // A later part with an already-covered trigger is shadowed by
        // first-match-wins and must not perturb the summary.
        let mut bloated = strategy.clone();
        bloated.outbound.push(StrategyPart {
            trigger: Trigger::tcp_flags("SA"),
            action: Action::Drop,
        });
        prop_assert_eq!(summarize(&strategy), summarize(&bloated),
            "shadowed part changed the summary of `{}`", strategy);
    }

    #[test]
    fn emission_bounds_agree_between_tree_and_summary(strategy in arb_strategy()) {
        // Per-part max_emit in the summary equals the tree-level bound
        // on the same canonical part.
        let canonical = canonicalize_strategy(&strategy);
        let summary = summarize(&canonical);
        for (part, summarized) in canonical.outbound.iter().zip(&summary.outbound) {
            prop_assert_eq!(
                strata::absint::max_emission(&part.action),
                summarized.max_emit
            );
        }
    }
}
