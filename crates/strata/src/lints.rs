//! Lint rules over Geneva strategy trees.
//!
//! Each rule has a stable machine-readable code and fires
//! [`Diagnostic`]s with byte-offset spans into the strategy's DSL
//! source. Rules fall into three groups:
//!
//! * **trigger rules** look only at a part's trigger
//!   (`dead-branch`, `shadowed-trigger`,
//!   `client-side-action-in-server-strategy`);
//! * **node rules** look at one action node at a time
//!   (`ttl-unreachable`, `degenerate-fragment`, `dup-amplification`,
//!   `checksum-futile` on inbound);
//! * **path rules** reason about the abstract packet each
//!   root-to-`send` path emits, using the [`crate::absint`]
//!   `FieldEffect` summaries (`checksum-futile`,
//!   `synack-payload-compat`, `resync-invariant`, `handshake-severed`,
//!   `seq-desync-kills-client`, `ack-desync-kills-client`,
//!   `deliverable-rst-resets-client`, `window-zero-stalls-client`,
//!   `checksum-left-broken-reaches-client`, `no-op-chain`).
//!
//! Futility proofs about one part are suppressed when an *earlier*
//! part could intercept the same packets (see `shielded_by_earlier`):
//! first-match-wins means a proof about a shielded part says nothing
//! about the strategy as a whole.
//!
//! Severity is [`Severity::Warning`] unless the rule *proves* the
//! strategy cannot beat the identity strategy, in which case it is
//! [`Severity::Error`] with `proves_futile` set — the signal
//! `evolve`'s fitness cache uses to skip simulation entirely.

use geneva::{
    parse_strategy_spanned, Action, ParseError, PartSpans, Span, Strategy, StrategyPart,
    StrategySpans, TamperMode, Trigger,
};
use packet::field::{FieldKind, FieldValue};
use packet::{Proto, TcpFlags};

use crate::absint::{action_effects, max_emission, FieldEffect, PathEffect};
use crate::canon::{canonicalize, is_inert};
use crate::censor_model::{automaton, CensorAutomaton, CensorId};
use crate::diagnostics::{Diagnostic, Severity};

/// Emission count at which `dup-amplification` starts complaining.
/// `cay verify` flags the compiled program's proved bound
/// (`OpsProof::max_emit`) against the same threshold, so the tree walk
/// and the abstract interpreter can never disagree about what counts
/// as amplified.
pub const AMPLIFICATION_LIMIT: usize = 8;

/// Scenario knowledge that unlocks the context-dependent lints.
///
/// The defaults describe the simulated path (`netsim::PathConfig`)
/// and claim nothing about the censor, so context-free callers (the
/// `lint` CLI) still get the topology-aware rules.
#[derive(Debug, Clone)]
pub struct LintContext {
    /// Router hops from the strategic server to the censoring
    /// middlebox. A server-emitted packet with TTL below this dies
    /// before the censor ever sees it.
    pub hops_to_middlebox: u8,
    /// Router hops from the server all the way to the client. A
    /// packet with TTL below this can influence the censor but never
    /// reaches the client.
    pub hops_to_client: u8,
    /// TTL the engine's packets carry when no tamper touches it.
    pub default_ttl: u8,
    /// Whether the modeled censor tears down / resynchronizes its TCB
    /// on injected RSTs. `None` = unknown; when unset, the fact is
    /// read off the [`censor`](LintContext::censor) automaton instead.
    /// An explicit value wins over the automaton (hypothetical-censor
    /// analyses).
    pub censor_resyncs_on_rst: Option<bool>,
    /// Which censor automaton guards the modeled path. Censor-aware
    /// lints consult the automaton's declarative record
    /// ([`crate::censor_model::automaton`]) — RST-resync behavior,
    /// injection repertoire — instead of hard-coded per-censor lists.
    /// `None` = unknown censor: censor-dependent rules stay quiet and
    /// censor-dependent stand-downs stay off.
    pub censor: Option<CensorId>,
    /// Whether the application exchange rides a TCP handshake + data
    /// flow. All current application protocols do (DNS here is DNS
    /// over TCP, RFC 7766), but the TCP-state-machine futility proofs
    /// (`handshake-severed`, the desync/RST/data-flow rules) are only
    /// sound when this holds, so it is an explicit knob.
    pub tcp_exchange: bool,
}

impl Default for LintContext {
    fn default() -> Self {
        let path = netsim::PathConfig::default();
        LintContext {
            hops_to_middlebox: path.mb_to_server_hops,
            hops_to_client: path.mb_to_server_hops + path.client_to_mb_hops,
            default_ttl: 64,
            censor_resyncs_on_rst: None,
            censor: None,
            tcp_exchange: true,
        }
    }
}

impl LintContext {
    /// The declarative automaton for the configured censor, if known.
    fn automaton(&self) -> Option<&'static CensorAutomaton> {
        self.censor.map(automaton)
    }

    /// Does the censor tear down / resynchronize tracking state on a
    /// server-sent RST? Explicit knowledge wins; otherwise the censor
    /// automaton's declarative fact answers.
    fn resyncs_on_rst(&self) -> Option<bool> {
        self.censor_resyncs_on_rst
            .or_else(|| self.automaton().and_then(|a| a.resyncs_on_server_rst))
    }
}

/// Parse strategy text and lint it with default context. The returned
/// spans index straight into `source`, so [`Diagnostic::render`] can
/// quote the offending snippet.
pub fn lint(source: &str) -> Result<Vec<Diagnostic>, ParseError> {
    let (strategy, spans) = parse_strategy_spanned(source)?;
    Ok(lint_spanned(&strategy, &spans, &LintContext::default()))
}

/// Lint an already-parsed strategy. Spans are recovered by re-parsing
/// the strategy's canonical `Display` text (Display/parse round-trips
/// exactly), so they index into `strategy.to_string()`.
pub fn lint_with_context(strategy: &Strategy, ctx: &LintContext) -> Vec<Diagnostic> {
    let text = strategy.to_string();
    match parse_strategy_spanned(&text) {
        Ok((reparsed, spans)) => lint_spanned(&reparsed, &spans, ctx),
        // Display text always re-parses; if it somehow does not, lint
        // with empty spans rather than losing the findings.
        Err(_) => lint_spanned(strategy, &StrategySpans::default(), ctx),
    }
}

/// The real worker: strategy + node spans + context → findings.
pub fn lint_spanned(
    strategy: &Strategy,
    spans: &StrategySpans,
    ctx: &LintContext,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    lint_direction(&strategy.outbound, &spans.outbound, true, ctx, &mut out);
    lint_direction(&strategy.inbound, &spans.inbound, false, ctx, &mut out);
    out.sort_by_key(|d| (d.span.start, d.span.end));
    out
}

fn lint_direction(
    parts: &[StrategyPart],
    spans: &[PartSpans],
    outbound: bool,
    ctx: &LintContext,
    out: &mut Vec<Diagnostic>,
) {
    for (i, part) in parts.iter().enumerate() {
        let ps = spans.get(i);
        let part_span = ps.map(|s| s.part).unwrap_or_default();
        let trigger_span = ps.map(|s| s.trigger).unwrap_or_default();
        let node_spans: &[Span] = ps.map(|s| s.actions.as_slice()).unwrap_or(&[]);

        // -- trigger rules ------------------------------------------------
        lint_dead_branch(&part.trigger, trigger_span, out);
        lint_shadowed_trigger(parts, i, trigger_span, out);
        if outbound {
            lint_client_side_trigger(&part.trigger, trigger_span, out);
        }

        // -- node rules ---------------------------------------------------
        let mut nodes = Vec::new();
        part.action.walk(&mut |a| nodes.push(a));
        for (j, node) in nodes.iter().enumerate() {
            let span = node_spans.get(j).copied().unwrap_or(part_span);
            lint_node(node, span, outbound, ctx, out);
        }
        lint_dup_amplification(&part.action, part_span, out);

        // -- path rules ---------------------------------------------------
        if outbound {
            let paths = action_effects(&part.action);
            let shielded = shielded_by_earlier(parts, i);
            lint_no_op_chain(&part.action, part_span, out);
            lint_checksum_futile_part(&paths, part_span, out);
            lint_synack_payload(part, &paths, part_span, out);
            lint_resync_invariant(part, &paths, part_span, ctx, out);
            lint_window_zero(part, &paths, part_span, ctx, out);
            if !shielded && ctx.tcp_exchange {
                lint_handshake_flow(part, &paths, part_span, ctx, out);
                lint_data_flow_severed(part, &paths, part_span, ctx, out);
            }
        } else {
            lint_no_op_chain(&part.action, part_span, out);
        }
    }
}

/// Could an *earlier* part intercept packets this part would match?
/// An earlier part with the same trigger makes this part unreachable;
/// an earlier part on a *different* field may co-match the same packet
/// (e.g. `[IP:ttl:64]` before `[TCP:flags:SA]` can swallow the
/// SYN+ACK first). Only an earlier part on the same field with a
/// different value is provably disjoint (triggers are exact matches).
/// A futility proof about a shielded part does not transfer to the
/// whole strategy, so the proving lints stand down.
fn shielded_by_earlier(parts: &[StrategyPart], index: usize) -> bool {
    let me = &parts[index].trigger;
    parts[..index]
        .iter()
        .any(|p| p.trigger.field != me.field || p.trigger.value == me.value)
}

fn diag(
    severity: Severity,
    code: &'static str,
    span: Span,
    message: String,
    suggestion: Option<String>,
    proves_futile: bool,
) -> Diagnostic {
    Diagnostic {
        severity,
        code,
        span,
        message,
        suggestion,
        proves_futile,
    }
}

// ---------------------------------------------------------------------------
// Trigger rules
// ---------------------------------------------------------------------------

/// `dead-branch`: the trigger compares against a value the field can
/// never render as, so the part can never fire.
///
/// Triggers match by *exact string equality* against the field's
/// canonical syntax (`Trigger::matches` compares `to_syntax()`
/// output), so `TCP:sport:070` (leading zero), `TCP:sport:99999`
/// (exceeds u16) and `TCP:flags:AS` (non-canonical letter order — the
/// stack renders `SA`) are all unmatchable.
fn lint_dead_branch(trigger: &Trigger, span: Span, out: &mut Vec<Diagnostic>) {
    let Ok(kind) = trigger.field.kind() else {
        return;
    };
    let value = trigger.value.as_str();
    let reason: Option<String> = match kind {
        FieldKind::U8 | FieldKind::U16 | FieldKind::U32 | FieldKind::OptionNum => {
            let max: u64 = match kind {
                FieldKind::U8 => u64::from(u8::MAX),
                FieldKind::U16 => u64::from(u16::MAX),
                _ => u64::from(u32::MAX),
            };
            match value.parse::<u64>() {
                Err(_) => Some(format!("`{value}` is not a decimal number")),
                Ok(n) if n.to_string() != value => {
                    Some(format!("`{value}` is not canonical decimal (use `{n}`)"))
                }
                Ok(n) if n > max => Some(format!(
                    "{n} exceeds the field's maximum of {max}, no packet can carry it"
                )),
                Ok(_) => None,
            }
        }
        FieldKind::Flags => match TcpFlags::from_geneva(value) {
            None => Some(format!("`{value}` is not a valid TCP flag combination")),
            Some(flags) if flags.to_geneva() != value => Some(format!(
                "`{value}` is not in canonical flag order (the stack renders `{}`)",
                flags.to_geneva()
            )),
            Some(_) => None,
        },
        FieldKind::Bytes => None,
    };
    if let Some(reason) = reason {
        out.push(diag(
            Severity::Warning,
            "dead-branch",
            span,
            format!(
                "trigger [{}:{}] can never match: {}",
                trigger.field.to_syntax(),
                value,
                reason
            ),
            None,
            false,
        ));
    }
}

/// `shadowed-trigger`: a later part repeats an earlier part's trigger.
/// The engine applies the *first* matching part, so the later one is
/// unreachable.
fn lint_shadowed_trigger(
    parts: &[StrategyPart],
    index: usize,
    span: Span,
    out: &mut Vec<Diagnostic>,
) {
    let me = &parts[index].trigger;
    let shadowed_by = parts[..index]
        .iter()
        .position(|p| p.trigger.field == me.field && p.trigger.value == me.value);
    if let Some(first) = shadowed_by {
        out.push(diag(
            Severity::Warning,
            "shadowed-trigger",
            span,
            format!(
                "trigger [{}:{}] is shadowed by part {} with the same trigger; \
                 only the first matching part runs",
                me.field.to_syntax(),
                me.value,
                first + 1
            ),
            Some("delete this part or merge its action into the earlier one".into()),
            false,
        ));
    }
}

/// `client-side-action-in-server-strategy`: an outbound trigger on a
/// bare SYN. Servers never *emit* bare SYNs (their handshake packet is
/// the SYN+ACK), so this is client-side genetic material that can
/// never fire when the strategy is deployed server-side — the paper's
/// §3 observation that client strategies do not transplant directly.
fn lint_client_side_trigger(trigger: &Trigger, span: Span, out: &mut Vec<Diagnostic>) {
    if trigger.field.proto == Proto::Tcp && trigger.field.name == "flags" && trigger.value == "S" {
        out.push(diag(
            Severity::Warning,
            "client-side-action-in-server-strategy",
            span,
            "outbound trigger on a bare SYN: servers do not emit SYNs, so this part \
             never fires server-side"
                .into(),
            Some("trigger on the server's SYN+ACK instead: [TCP:flags:SA]".into()),
            false,
        ));
    }
}

// ---------------------------------------------------------------------------
// Node rules
// ---------------------------------------------------------------------------

fn lint_node(
    node: &Action,
    span: Span,
    outbound: bool,
    ctx: &LintContext,
    out: &mut Vec<Diagnostic>,
) {
    match node {
        // `ttl-unreachable`: the tampered packet dies before the
        // middlebox, so it cannot even confuse the censor.
        Action::Tamper {
            field,
            mode: TamperMode::Replace(value),
            ..
        } if field.proto == Proto::Ip && field.name == "ttl" => {
            let ttl = match value {
                FieldValue::Num(n) => Some(*n),
                FieldValue::Str(s) => s.parse::<u64>().ok(),
                _ => None,
            };
            if let Some(ttl) = ttl {
                if ttl < u64::from(ctx.hops_to_middlebox) {
                    out.push(diag(
                        Severity::Warning,
                        "ttl-unreachable",
                        span,
                        format!(
                            "TTL {ttl} is below the {} hops to the middlebox; the packet \
                             expires before the censor sees it",
                            ctx.hops_to_middlebox
                        ),
                        Some(format!(
                            "use a TTL in {}..{} to reach the censor but not the client",
                            ctx.hops_to_middlebox, ctx.hops_to_client
                        )),
                        false,
                    ));
                }
            }
        }
        // `degenerate-fragment`: the engine only splits TCP segments
        // and IP datagrams; for UDP/DNS/FTP it runs the first subtree
        // on the whole packet and the second subtree never executes.
        Action::Fragment { proto, .. } if matches!(proto, Proto::Udp | Proto::Dns | Proto::Ftp) => {
            out.push(diag(
                Severity::Warning,
                "degenerate-fragment",
                span,
                format!(
                    "fragment{{{}}} never splits: only the first subtree runs and the \
                     second is dead code",
                    proto.token()
                ),
                Some("fragment on TCP or IP, or replace with the first subtree".into()),
                false,
            ));
        }
        // `checksum-futile` (inbound flavour): packets we *receive*
        // already cleared the censor; corrupting their checksum only
        // makes our own stack discard them.
        Action::Tamper { field, .. } if !outbound && field.name == "chksum" => {
            out.push(diag(
                Severity::Warning,
                "checksum-futile",
                span,
                format!(
                    "corrupting {} on an inbound packet is futile: the censor already \
                     processed it, only this host's stack sees the damage",
                    field.to_syntax()
                ),
                None,
                false,
            ));
        }
        _ => {}
    }
}

/// `dup-amplification`: worst-case emitted-packet count of the tree.
/// Strategies that explode one trigger packet into many are slow to
/// simulate and trivially fingerprintable on the wire.
fn lint_dup_amplification(action: &Action, span: Span, out: &mut Vec<Diagnostic>) {
    let n = max_emission(action);
    if n >= AMPLIFICATION_LIMIT {
        out.push(diag(
            Severity::Warning,
            "dup-amplification",
            span,
            format!(
                "this tree can emit up to {n} packets per trigger packet \
                 (amplification threshold {AMPLIFICATION_LIMIT})"
            ),
            Some("collapse duplicate/fragment chains".into()),
            false,
        ));
    }
}

// ---------------------------------------------------------------------------
// Path rules (over `absint::PathEffect` summaries)
// ---------------------------------------------------------------------------

/// Does the trigger fire on the server's SYN+ACK?
fn on_synack(part: &StrategyPart) -> bool {
    let t = &part.trigger;
    t.field.proto == Proto::Tcp && t.field.name == "flags" && t.value == "SA"
}

/// Can a packet with these flags advance a client out of SYN_SENT?
/// Any SYN-carrying, non-RST combination can: with ACK it is (a
/// possibly option-decorated) SYN+ACK, without ACK it triggers
/// simultaneous open (the client's state machine ignores the ack field
/// on a bare SYN). Checking flag *bits* rather than exact strings is
/// what keeps e.g. `SPA` — which establishes just like `SA` — from
/// being "proven" dead.
fn flags_advance_handshake(flags: TcpFlags) -> bool {
    flags.contains(TcpFlags::SYN) && !flags.contains(TcpFlags::RST)
}

/// The path's packet is not provably destroyed before the client:
/// checksum not definitely broken and TTL not definitely short.
fn reaches_client(p: &PathEffect, ctx: &LintContext) -> bool {
    !p.checksum_broken()
        && p.ttl(ctx.default_ttl)
            .is_none_or(|ttl| ttl >= u64::from(ctx.hops_to_client))
}

/// The path's packet *definitely* arrives at the client: checksum
/// provably verifying and TTL provably sufficient. (Corrupted TTLs
/// make [`reaches_client`] true but this false.)
fn definitely_reaches_client(p: &PathEffect, ctx: &LintContext) -> bool {
    !p.checksum_broken()
        && matches!(p.ttl(ctx.default_ttl), Some(ttl) if ttl >= u64::from(ctx.hops_to_client))
}

/// `no-op-chain`: the whole action tree canonicalizes to a bare
/// `send` — elaborate genetic material that does exactly nothing.
fn lint_no_op_chain(action: &Action, span: Span, out: &mut Vec<Diagnostic>) {
    if !matches!(action, Action::Send) && matches!(canonicalize(action), Action::Send) {
        out.push(diag(
            Severity::Warning,
            "no-op-chain",
            span,
            "this action tree is semantically `send`: every branch either forwards \
             the packet unchanged or cancels out"
                .into(),
            Some("replace the tree with `send` (or delete the part)".into()),
            false,
        ));
    }
}

/// `checksum-futile` (outbound flavour): *every* packet this part
/// emits leaves with a broken checksum, so the client's stack drops
/// them all and the part degenerates to `drop`.
fn lint_checksum_futile_part(paths: &[PathEffect], span: Span, out: &mut Vec<Diagnostic>) {
    if !paths.is_empty() && paths.iter().all(PathEffect::checksum_broken) {
        out.push(diag(
            Severity::Warning,
            "checksum-futile",
            span,
            "every packet this part emits has a corrupted checksum; the client drops \
             them all, so the part behaves like `drop`"
                .into(),
            Some(
                "keep at least one branch with a valid checksum so the client still \
                 receives the real packet"
                    .into(),
            ),
            false,
        ));
    }
}

/// The TCP handshake-flow family: `handshake-severed`,
/// `seq-desync-kills-client`, `ack-desync-kills-client`,
/// `deliverable-rst-resets-client`. All fire on parts triggering on
/// the server's SYN+ACK, and all prove futility — the caller already
/// checked the part is unshielded and the exchange is TCP.
///
/// * **severed** — no emitted packet can even *carry* flags that
///   advance a client out of SYN_SENT (tree inert, every copy
///   destroyed in transit, or every surviving copy RST/FIN/ACK-only).
///   "Can advance" includes a bare SYN: clients answer it with a
///   SYN+ACK of their own (simultaneous open, paper §5 — exactly how
///   Strategy 1's `replace:S` branch completes). Corrupted flags are
///   unknowable at lint time and never prove severance.
/// * **seq/ack desync** — some packet advances by flags, but every
///   such packet desynchronizes the sequence space. A SYN+ACK with a
///   rewritten `seq` makes the client ack `bogus+1`, which the server
///   (expecting `iss+1`) ignores forever — it stays in SYN_RCVD
///   retransmitting, and retransmissions are re-tampered identically
///   (the corrupt PRNG is pure in the packet bytes), so the desync is
///   permanent. A SYN+ACK with a rewritten `ack` fails the client's
///   `ack == snd_nxt` check and is answered with a RST. Only paths
///   with the relevant fields *untouched* are viable (a rewritten
///   value landing on the true one is a ~2⁻³² accident, the same
///   tolerance the engine's corrupt semantics already accept). A bare
///   SYN needs only `seq` untouched — the client ignores its ack
///   field.
/// * **deliverable RST** — before any viable packet arrives, the
///   client *definitely* receives a RST+ACK whose ack field is the
///   engine's own (hence valid): SYN_SENT processes it as a valid
///   reset and the connection dies permanently.
///
/// Fragments make per-path field facts approximate (the split may
/// shift `seq`), so the desync/RST rules stand down on parts with any
/// fragment path; severance (which only needs flags + deliverability)
/// does not.
fn lint_handshake_flow(
    part: &StrategyPart,
    paths: &[PathEffect],
    span: Span,
    ctx: &LintContext,
    out: &mut Vec<Diagnostic>,
) {
    if !on_synack(part) {
        return;
    }
    let flags_ok = |p: &PathEffect| match p.emitted_flags(&part.trigger) {
        // Corrupt leaves the flags unknowable — possibly viable.
        None => true,
        Some(f) => flags_advance_handshake(f),
    };
    let severed = if paths.is_empty() {
        // Inert tree: the SYN+ACK is swallowed entirely.
        is_inert(&part.action)
    } else {
        !paths.iter().any(|p| reaches_client(p, ctx) && flags_ok(p))
    };
    if severed {
        let why = if paths.is_empty() {
            "it drops every SYN+ACK"
        } else {
            "every emitted packet is checksum-broken, TTL-dead before the client, \
             or flagged so it cannot advance the handshake (no SYN bit, or a RST \
             alongside it)"
        };
        out.push(diag(
            Severity::Error,
            "handshake-severed",
            span,
            format!(
                "this part destroys the handshake: {why}; no connection can ever \
                 complete, so the strategy cannot beat the identity strategy"
            ),
            Some("keep one untampered branch that delivers the real SYN+ACK".into()),
            true,
        ));
        return;
    }
    if paths.iter().any(|p| p.via_fragment) {
        return;
    }

    // A path that actually completes the handshake: reaches the
    // client, advances by flags, and keeps the sequence space intact.
    let advances = |p: &PathEffect| {
        if !reaches_client(p, ctx) {
            return false;
        }
        let seq_ok = p.effect("TCP:seq").is_none();
        let ack_ok = p.effect("TCP:ack").is_none();
        match p.emitted_flags(&part.trigger) {
            // Unknown flags: viable only if they can land on a bare
            // SYN (ack ignored) or a SYN+ACK with both fields intact.
            None => seq_ok,
            Some(f) if flags_advance_handshake(f) => {
                if f.contains(TcpFlags::ACK) {
                    seq_ok && ack_ok
                } else {
                    seq_ok
                }
            }
            Some(_) => false,
        }
    };
    let advancing: Vec<usize> = (0..paths.len()).filter(|&i| advances(&paths[i])).collect();

    if advancing.is_empty() {
        // Not severed, so some path survives by flags — each such path
        // must have been blocked by a seq/ack rewrite.
        let blocked_on_seq = paths
            .iter()
            .any(|p| reaches_client(p, ctx) && flags_ok(p) && p.effect("TCP:seq").is_some());
        let (code, field, consequence) = if blocked_on_seq {
            (
                "seq-desync-kills-client",
                "seq",
                "the client acknowledges the bogus sequence number, which the \
                 server ignores forever — it stays in SYN_RCVD and no data can flow",
            )
        } else {
            (
                "ack-desync-kills-client",
                "ack",
                "the client rejects the wrong acknowledgment with a RST and the \
                 handshake never completes",
            )
        };
        out.push(diag(
            Severity::Error,
            code,
            span,
            format!(
                "every handshake-advancing packet this part emits has a rewritten \
                 TCP {field}: {consequence}; the strategy cannot beat the identity \
                 strategy"
            ),
            Some(format!(
                "keep one branch that leaves TCP:{field} untouched on a delivered \
                 SYN+ACK (or bare SYN)"
            )),
            true,
        ));
        return;
    }

    // Handshake-viable packets exist — but does a lethal RST+ACK
    // definitely arrive before the first of them? Against a censor
    // whose automaton already injects RSTs toward *both* endpoints on
    // detection (the GFW's teardown), a client-visible RST is the
    // flow's ambient failure mode and this emission shape is the raw
    // material of the RST-desync family the GA breeds there — the
    // rule stands down and leaves the verdict to simulation.
    if ctx
        .automaton()
        .is_some_and(|a| a.injects_rst_to_client && a.injects_rst_to_server)
    {
        return;
    }
    let kills = |p: &PathEffect| {
        definitely_reaches_client(p, ctx)
            && p.effect("TCP:ack").is_none()
            && matches!(
                p.emitted_flags(&part.trigger),
                Some(f) if f.contains(TcpFlags::RST) && f.contains(TcpFlags::ACK)
            )
    };
    if let Some(k) = (0..paths.len()).find(|&i| kills(&paths[i])) {
        if advancing.iter().all(|&i| i > k) {
            out.push(diag(
                Severity::Error,
                "deliverable-rst-resets-client",
                span,
                "a RST+ACK with a valid acknowledgment definitely reaches the \
                 client before any handshake-completing packet: SYN_SENT treats \
                 it as a genuine reset and the connection dies; the strategy \
                 cannot beat the identity strategy"
                    .into(),
                Some(
                    "break the RST copy's checksum or shorten its TTL so only the \
                     censor sees it (the paper's insertion shape)"
                        .into(),
                ),
                true,
            ));
        }
    }
}

/// `window-zero-stalls-client`: a delivered, handshake-advancing
/// SYN+ACK advertises a zero receive window. The connection opens but
/// the client cannot send data until a window update arrives —
/// zombie-like stalls that waste the whole exchange timeout. Not a
/// futility proof (persist-timer probes may eventually open the
/// window), hence a warning.
fn lint_window_zero(
    part: &StrategyPart,
    paths: &[PathEffect],
    span: Span,
    ctx: &LintContext,
    out: &mut Vec<Diagnostic>,
) {
    if !on_synack(part) || !ctx.tcp_exchange {
        return;
    }
    let stalls = paths.iter().any(|p| {
        !p.checksum_broken()
            && matches!(
                p.emitted_flags(&part.trigger),
                Some(f) if flags_advance_handshake(f)
            )
            && p.effect("TCP:window") == Some(&FieldEffect::Written(FieldValue::Num(0)))
    });
    if stalls {
        out.push(diag(
            Severity::Warning,
            "window-zero-stalls-client",
            span,
            "a handshake-advancing packet advertises a zero receive window; the \
             client connects but stalls waiting for a window update"
                .into(),
            Some("advertise a nonzero window on the delivered copy".into()),
            false,
        ));
    }
}

/// `checksum-left-broken-reaches-client`: the part triggers on the
/// server's data segments (`PSH+ACK` — every data-bearing packet the
/// simulated server sends) and destroys all of them: each emitted copy
/// is checksum-broken or TTL-dead before the client, or the tree emits
/// nothing at all. Retransmissions re-match the same trigger and are
/// re-tampered identically, so the client can never receive the
/// response — the strategy cannot beat the identity strategy.
fn lint_data_flow_severed(
    part: &StrategyPart,
    paths: &[PathEffect],
    span: Span,
    ctx: &LintContext,
    out: &mut Vec<Diagnostic>,
) {
    let t = &part.trigger;
    let on_data = t.field.proto == Proto::Tcp && t.field.name == "flags" && t.value == "PA";
    if !on_data {
        return;
    }
    let severed = if paths.is_empty() {
        is_inert(&part.action)
    } else {
        !paths.iter().any(|p| reaches_client(p, ctx))
    };
    if severed {
        let why = if paths.is_empty() {
            "it drops every data segment"
        } else {
            "every emitted copy is checksum-broken or TTL-dead before the client"
        };
        out.push(diag(
            Severity::Error,
            "checksum-left-broken-reaches-client",
            span,
            format!(
                "this part destroys the server's data segments: {why}; the client \
                 can never receive the response, so the strategy cannot beat the \
                 identity strategy"
            ),
            Some("keep one copy that delivers the real segment intact".into()),
            true,
        ));
    }
}

/// `synack-payload-compat`: a path delivers the real SYN+ACK *with
/// payload attached*. Linux-family clients ignore SYN+ACK payloads,
/// but Windows and macOS stacks break the connection (§7 of the
/// paper), so the strategy silently loses those client populations.
fn lint_synack_payload(
    part: &StrategyPart,
    paths: &[PathEffect],
    span: Span,
    out: &mut Vec<Diagnostic>,
) {
    if !on_synack(part) {
        return;
    }
    let risky = paths.iter().any(|p| {
        p.adds_payload()
            && !p.checksum_broken()
            && p.emitted_flags(&part.trigger) == Some(TcpFlags::SYN_ACK)
    });
    if risky {
        let intolerant: Vec<&str> = endpoint::profile::all_profiles()
            .iter()
            .filter(|p| !p.ignores_synack_payload)
            .map(|p| p.name)
            .collect();
        if !intolerant.is_empty() {
            out.push(diag(
                Severity::Warning,
                "synack-payload-compat",
                span,
                format!(
                    "a delivered SYN+ACK carries payload; {} client profiles \
                     (e.g. {}) abort the handshake on that",
                    intolerant.len(),
                    intolerant.first().copied().unwrap_or("?")
                ),
                Some(
                    "corrupt the checksum of the payload-bearing copy so clients \
                     discard it (the paper's §7 fix)"
                        .into(),
                ),
                false,
            ));
        }
    }
}

/// `resync-invariant`: the part injects an RST expecting the censor to
/// tear down or resynchronize its TCB, but the configured censor model
/// ignores RSTs — the injection premise does not hold.
fn lint_resync_invariant(
    part: &StrategyPart,
    paths: &[PathEffect],
    span: Span,
    ctx: &LintContext,
    out: &mut Vec<Diagnostic>,
) {
    if ctx.resyncs_on_rst() != Some(false) {
        return;
    }
    let injects_rst = paths
        .iter()
        .any(|p| p.emitted_flags(&part.trigger) == Some(TcpFlags::RST));
    let keeps_real = paths
        .iter()
        .any(|p| p.emitted_flags(&part.trigger) != Some(TcpFlags::RST));
    if injects_rst && keeps_real {
        out.push(diag(
            Severity::Warning,
            "resync-invariant",
            span,
            "this part injects a RST to desynchronize the censor, but the modeled \
             censor does not resynchronize on RSTs; the injected packet has no effect"
                .into(),
            Some(
                "target a censor model that tears down on RST, or evolve a \
                  different desync primitive"
                    .into(),
            ),
            false,
        ));
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;
    use geneva::parse_strategy;

    fn codes(src: &str) -> Vec<&'static str> {
        lint(src).expect("parses").iter().map(|d| d.code).collect()
    }

    fn codes_ctx(src: &str, ctx: &LintContext) -> Vec<&'static str> {
        let strategy = parse_strategy(src).expect("parses");
        lint_with_context(&strategy, ctx)
            .iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn no_op_chain_fires_on_cancelling_tree() {
        let c = codes("[TCP:flags:SA]-duplicate(drop,)-| \\/ ");
        assert!(c.contains(&"no-op-chain"), "{c:?}");
    }

    #[test]
    fn no_op_chain_quiet_on_real_duplicate() {
        let c = codes("[TCP:flags:SA]-duplicate(,)-| \\/ ");
        assert!(!c.contains(&"no-op-chain"), "{c:?}");
    }

    #[test]
    fn dead_branch_fires_on_out_of_range_port() {
        let c = codes("[TCP:sport:70000]-drop-| \\/ ");
        assert!(c.contains(&"dead-branch"), "{c:?}");
    }

    #[test]
    fn dead_branch_fires_on_non_canonical_flags() {
        let c = codes("[TCP:flags:AS]-duplicate(,)-| \\/ ");
        assert!(c.contains(&"dead-branch"), "{c:?}");
    }

    #[test]
    fn dead_branch_quiet_on_matchable_trigger() {
        let c = codes("[TCP:flags:SA]-duplicate(,)-| \\/ ");
        assert!(!c.contains(&"dead-branch"), "{c:?}");
    }

    #[test]
    fn shadowed_trigger_fires_on_repeat() {
        let c = codes("[TCP:ack:0]-duplicate(,)-|[TCP:ack:0]-drop-| \\/ ");
        assert!(c.contains(&"shadowed-trigger"), "{c:?}");
    }

    #[test]
    fn shadowed_trigger_quiet_on_distinct_triggers() {
        let c = codes("[TCP:ack:0]-duplicate(,)-|[TCP:ack:1]-drop-| \\/ ");
        assert!(!c.contains(&"shadowed-trigger"), "{c:?}");
    }

    #[test]
    fn checksum_futile_fires_when_every_path_is_broken() {
        let c = codes("[TCP:ack:0]-tamper{TCP:chksum:corrupt}-| \\/ ");
        assert!(c.contains(&"checksum-futile"), "{c:?}");
    }

    #[test]
    fn checksum_futile_fires_on_inbound_checksum_tamper() {
        let c = codes(" \\/ [TCP:flags:SA]-tamper{TCP:chksum:corrupt}-|");
        assert!(c.contains(&"checksum-futile"), "{c:?}");
    }

    #[test]
    fn checksum_futile_quiet_when_a_clean_copy_survives() {
        // The paper's insertion shape: corrupt only the duplicate.
        let c = codes("[TCP:flags:SA]-duplicate(tamper{TCP:chksum:corrupt},)-| \\/ ");
        assert!(!c.contains(&"checksum-futile"), "{c:?}");
    }

    #[test]
    fn ttl_unreachable_fires_below_middlebox_distance() {
        let c = codes("[TCP:flags:SA]-duplicate(tamper{IP:ttl:replace:2},)-| \\/ ");
        assert!(c.contains(&"ttl-unreachable"), "{c:?}");
    }

    #[test]
    fn ttl_unreachable_quiet_for_insertion_range_ttl() {
        // 10 hops: past the middlebox (8) but short of the client (12).
        let c = codes("[TCP:flags:SA]-duplicate(tamper{IP:ttl:replace:10},)-| \\/ ");
        assert!(!c.contains(&"ttl-unreachable"), "{c:?}");
    }

    #[test]
    fn dup_amplification_fires_at_eight_leaves() {
        let c = codes(
            "[TCP:flags:SA]-duplicate(duplicate(duplicate(,),duplicate(,)),\
             duplicate(duplicate(,),duplicate(,)))-| \\/ ",
        );
        assert!(c.contains(&"dup-amplification"), "{c:?}");
    }

    #[test]
    fn dup_amplification_quiet_below_threshold() {
        let c = codes("[TCP:flags:SA]-duplicate(duplicate(,),)-| \\/ ");
        assert!(!c.contains(&"dup-amplification"), "{c:?}");
    }

    #[test]
    fn client_side_trigger_fires_on_outbound_bare_syn() {
        let c = codes("[TCP:flags:S]-duplicate(,)-| \\/ ");
        assert!(
            c.contains(&"client-side-action-in-server-strategy"),
            "{c:?}"
        );
    }

    #[test]
    fn client_side_trigger_quiet_on_inbound_syn() {
        // Inbound SYNs are exactly what a server receives.
        let c = codes(" \\/ [TCP:flags:S]-duplicate(,)-|");
        assert!(
            !c.contains(&"client-side-action-in-server-strategy"),
            "{c:?}"
        );
    }

    #[test]
    fn resync_invariant_fires_against_non_resyncing_censor() {
        let ctx = LintContext {
            censor_resyncs_on_rst: Some(false),
            ..LintContext::default()
        };
        let c = codes_ctx(
            "[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},)-| \\/ ",
            &ctx,
        );
        assert!(c.contains(&"resync-invariant"), "{c:?}");
    }

    #[test]
    fn resync_invariant_quiet_without_censor_knowledge() {
        let c = codes("[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},)-| \\/ ");
        assert!(!c.contains(&"resync-invariant"), "{c:?}");
    }

    #[test]
    fn resync_invariant_reads_the_censor_automaton() {
        // Naming the censor is enough: the automaton's declarative
        // `resyncs_on_server_rst: Some(false)` unlocks the rule with no
        // hand-passed fact.
        for id in crate::censor_model::CensorId::all() {
            let ctx = LintContext {
                censor: Some(id),
                ..LintContext::default()
            };
            let c = codes_ctx(
                "[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},)-| \\/ ",
                &ctx,
            );
            assert!(c.contains(&"resync-invariant"), "{id:?}: {c:?}");
        }
        // An explicit override beats the automaton (hypothetical
        // resyncing variant of the same censor).
        let ctx = LintContext {
            censor: Some(crate::censor_model::CensorId::Gfw),
            censor_resyncs_on_rst: Some(true),
            ..LintContext::default()
        };
        let c = codes_ctx(
            "[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},)-| \\/ ",
            &ctx,
        );
        assert!(!c.contains(&"resync-invariant"), "{c:?}");
    }

    #[test]
    fn deliverable_rst_stands_down_for_rst_injecting_censor() {
        use crate::censor_model::CensorId;
        let src = "[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:RA},)-| \\/ ";
        // The GFW automaton injects RSTs toward both endpoints: the
        // deterministic claim yields to simulation.
        let ctx = LintContext {
            censor: Some(CensorId::Gfw),
            ..LintContext::default()
        };
        let c = codes_ctx(src, &ctx);
        assert!(!c.contains(&"deliverable-rst-resets-client"), "{c:?}");
        // Censors without a bidirectional RST teardown keep the proof
        // (and so does an unknown censor — see the context-free test).
        for id in [CensorId::Airtel, CensorId::Iran, CensorId::Kazakhstan] {
            let ctx = LintContext {
                censor: Some(id),
                ..LintContext::default()
            };
            let c = codes_ctx(src, &ctx);
            assert!(
                c.contains(&"deliverable-rst-resets-client"),
                "{id:?}: {c:?}"
            );
        }
    }

    #[test]
    fn synack_payload_fires_on_payload_bearing_synack() {
        let c = codes("[TCP:flags:SA]-tamper{TCP:load:replace:AAA}-| \\/ ");
        assert!(c.contains(&"synack-payload-compat"), "{c:?}");
    }

    #[test]
    fn synack_payload_quiet_when_payload_copy_is_checksum_broken() {
        // §7 fix: the payload-bearing duplicate has a corrupted
        // checksum, so intolerant clients discard it.
        let c = codes(
            "[TCP:flags:SA]-duplicate(tamper{TCP:load:replace:AAA}\
             (tamper{TCP:chksum:corrupt}),)-| \\/ ",
        );
        assert!(!c.contains(&"synack-payload-compat"), "{c:?}");
    }

    #[test]
    fn degenerate_fragment_fires_on_udp() {
        let c = codes("[UDP:sport:53]-fragment{UDP:8:True}(,)-| \\/ ");
        assert!(c.contains(&"degenerate-fragment"), "{c:?}");
    }

    #[test]
    fn degenerate_fragment_quiet_on_tcp_segmentation() {
        let c = codes("[TCP:flags:PA]-fragment{TCP:8:True}(,)-| \\/ ");
        assert!(!c.contains(&"degenerate-fragment"), "{c:?}");
    }

    #[test]
    fn handshake_severed_fires_on_dropped_synack() {
        let diags = lint("[TCP:flags:SA]-drop-| \\/ ").expect("parses");
        let d = diags
            .iter()
            .find(|d| d.code == "handshake-severed")
            .expect("fires");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.proves_futile);
    }

    #[test]
    fn handshake_severed_fires_when_all_copies_are_broken() {
        let c = codes("[TCP:flags:SA]-tamper{TCP:chksum:corrupt}-| \\/ ");
        assert!(c.contains(&"handshake-severed"), "{c:?}");
    }

    #[test]
    fn handshake_severed_quiet_when_real_synack_survives() {
        let c = codes("[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},)-| \\/ ");
        assert!(!c.contains(&"handshake-severed"), "{c:?}");
    }

    #[test]
    fn handshake_severed_fires_when_no_emission_can_advance_syn_sent() {
        // Only a FIN reaches the client: not a SYN+ACK, not a
        // simultaneous-open SYN — the handshake never completes.
        let c = codes("[TCP:flags:SA]-tamper{TCP:flags:replace:F}-| \\/ ");
        assert!(c.contains(&"handshake-severed"), "{c:?}");
    }

    #[test]
    fn handshake_severed_quiet_on_simultaneous_open_and_corrupt_flags() {
        // Strategy 1's `replace:S` branch completes the handshake via
        // simultaneous open; corrupted flags are unknowable. Neither
        // proves severance.
        let sim_open =
            codes("[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},tamper{TCP:flags:replace:S})-| \\/ ");
        assert!(!sim_open.contains(&"handshake-severed"), "{sim_open:?}");
        let corrupt = codes("[TCP:flags:SA]-tamper{TCP:flags:corrupt}-| \\/ ");
        assert!(!corrupt.contains(&"handshake-severed"), "{corrupt:?}");
    }

    #[test]
    fn handshake_severed_sound_on_decorated_synack() {
        // SYN+PSH+ACK establishes exactly like SYN+ACK (the client
        // checks flag bits, not exact strings) — must not be refuted.
        let c = codes("[TCP:flags:SA]-tamper{TCP:flags:replace:SPA}-| \\/ ");
        assert!(!c.contains(&"handshake-severed"), "{c:?}");
    }

    #[test]
    fn seq_desync_fires_when_every_advancing_copy_is_desynced() {
        let diags = lint("[TCP:flags:SA]-tamper{TCP:seq:corrupt}-| \\/ ").expect("parses");
        let d = diags
            .iter()
            .find(|d| d.code == "seq-desync-kills-client")
            .expect("fires");
        assert!(d.proves_futile && d.severity == Severity::Error);
    }

    #[test]
    fn seq_desync_quiet_when_clean_copy_survives() {
        let c = codes(
            "[TCP:flags:SA]-duplicate(tamper{TCP:seq:corrupt}(tamper{TCP:chksum:corrupt}),)-| \\/ ",
        );
        assert!(!c.contains(&"seq-desync-kills-client"), "{c:?}");
    }

    #[test]
    fn ack_desync_fires_on_ack_rewrite() {
        let c = codes("[TCP:flags:SA]-tamper{TCP:ack:replace:99}-| \\/ ");
        assert!(c.contains(&"ack-desync-kills-client"), "{c:?}");
    }

    #[test]
    fn ack_rewrite_survives_via_simultaneous_open() {
        // A bare SYN ignores the ack field, so an ack rewrite on a
        // sim-open copy is harmless — must not be refuted.
        let c =
            codes("[TCP:flags:SA]-tamper{TCP:ack:corrupt}(tamper{TCP:flags:replace:S},)-| \\/ ");
        assert!(!c.contains(&"ack-desync-kills-client"), "{c:?}");
        assert!(!c.contains(&"handshake-severed"), "{c:?}");
    }

    #[test]
    fn deliverable_rst_fires_when_rst_ack_precedes_real_synack() {
        let diags =
            lint("[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:RA},)-| \\/ ").expect("parses");
        let d = diags
            .iter()
            .find(|d| d.code == "deliverable-rst-resets-client")
            .expect("fires");
        assert!(d.proves_futile);
    }

    #[test]
    fn deliverable_rst_quiet_when_rst_copy_is_censor_only() {
        // Insertion shape: the RST copy is checksum-broken, only the
        // censor processes it.
        let c = codes(
            "[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:RA}\
             (tamper{TCP:chksum:corrupt}),)-| \\/ ",
        );
        assert!(!c.contains(&"deliverable-rst-resets-client"), "{c:?}");
        // Bare RSTs (no ACK) are ignored in SYN_SENT: strategy 1 shape.
        let bare = codes("[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},)-| \\/ ");
        assert!(!bare.contains(&"deliverable-rst-resets-client"), "{bare:?}");
    }

    #[test]
    fn window_zero_warns_but_does_not_refute() {
        let diags = lint("[TCP:flags:SA]-tamper{TCP:window:replace:0}-| \\/ ").expect("parses");
        let d = diags
            .iter()
            .find(|d| d.code == "window-zero-stalls-client")
            .expect("fires");
        assert!(d.severity == Severity::Warning && !d.proves_futile);
        let c = codes("[TCP:flags:SA]-tamper{TCP:window:replace:1000}-| \\/ ");
        assert!(!c.contains(&"window-zero-stalls-client"), "{c:?}");
    }

    #[test]
    fn data_flow_severed_fires_when_every_data_copy_dies() {
        let diags = lint("[TCP:flags:PA]-tamper{TCP:chksum:corrupt}-| \\/ ").expect("parses");
        let d = diags
            .iter()
            .find(|d| d.code == "checksum-left-broken-reaches-client")
            .expect("fires");
        assert!(d.proves_futile);
        let dropped = lint("[TCP:flags:PA]-drop-| \\/ ").expect("parses");
        assert!(dropped
            .iter()
            .any(|d| d.code == "checksum-left-broken-reaches-client"));
    }

    #[test]
    fn data_flow_quiet_when_clean_segment_survives() {
        let c = codes("[TCP:flags:PA]-duplicate(tamper{TCP:chksum:corrupt},)-| \\/ ");
        assert!(!c.contains(&"checksum-left-broken-reaches-client"), "{c:?}");
        // Segmentation refinalizes both pieces: deliverable.
        let frag =
            codes("[TCP:flags:PA]-tamper{TCP:chksum:corrupt}(fragment{TCP:8:True}(,),)-| \\/ ");
        assert!(
            !frag.contains(&"checksum-left-broken-reaches-client"),
            "{frag:?}"
        );
    }

    #[test]
    fn futility_proofs_stand_down_on_shielded_parts() {
        // An earlier different-field part may swallow the SYN+ACK
        // first, so the later drop proves nothing about the strategy.
        let c = codes("[IP:ttl:64]-duplicate(,)-|[TCP:flags:SA]-drop-| \\/ ");
        assert!(!c.contains(&"handshake-severed"), "{c:?}");
        // Same field, different value: provably disjoint — the proof
        // stands.
        let c = codes("[TCP:flags:S]-duplicate(,)-|[TCP:flags:SA]-drop-| \\/ ");
        assert!(c.contains(&"handshake-severed"), "{c:?}");
    }

    #[test]
    fn tcp_futility_proofs_respect_tcp_exchange_flag() {
        let ctx = LintContext {
            tcp_exchange: false,
            ..LintContext::default()
        };
        let c = codes_ctx("[TCP:flags:SA]-drop-| \\/ ", &ctx);
        assert!(!c.contains(&"handshake-severed"), "{c:?}");
    }

    #[test]
    fn no_paper_strategy_is_statically_futile() {
        // The futility prover must be sound: every §5 strategy beats
        // the identity strategy in the paper's measurements, so none
        // may ever be rejected statically.
        for named in geneva::library::server_side() {
            let analysis = crate::analyze(&named.strategy());
            assert!(
                !analysis.statically_futile,
                "{} wrongly proven futile: {:?}",
                named.name, analysis.diagnostics
            );
        }
    }

    #[test]
    fn spans_point_into_source() {
        let src = "[TCP:sport:70000]-drop-| \\/ ";
        let diags = lint(src).expect("parses");
        let d = diags
            .iter()
            .find(|d| d.code == "dead-branch")
            .expect("fires");
        assert_eq!(&src[d.span.start..d.span.end], "[TCP:sport:70000]");
    }

    #[test]
    fn analysis_marks_futile_strategies() {
        let severed = parse_strategy("[TCP:flags:SA]-drop-| \\/ ").expect("parses");
        assert!(crate::analyze(&severed).statically_futile);
        let fine = parse_strategy("[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},)-| \\/ ")
            .expect("parses");
        assert!(!crate::analyze(&fine).statically_futile);
    }
}
