//! Lint rules over Geneva strategy trees.
//!
//! Each rule has a stable machine-readable code and fires
//! [`Diagnostic`]s with byte-offset spans into the strategy's DSL
//! source. Rules fall into three groups:
//!
//! * **trigger rules** look only at a part's trigger
//!   (`dead-branch`, `shadowed-trigger`,
//!   `client-side-action-in-server-strategy`);
//! * **node rules** look at one action node at a time
//!   (`ttl-unreachable`, `degenerate-fragment`, `dup-amplification`,
//!   `checksum-futile` on inbound);
//! * **path rules** enumerate every root-to-`send` path through an
//!   action tree and reason about the packet each path emits
//!   (`checksum-futile`, `synack-payload-compat`, `resync-invariant`,
//!   `handshake-severed`, `no-op-chain`).
//!
//! Severity is [`Severity::Warning`] unless the rule *proves* the
//! strategy cannot beat the identity strategy, in which case it is
//! [`Severity::Error`] with `proves_futile` set — the signal
//! `evolve`'s fitness cache uses to skip simulation entirely.

use geneva::{
    parse_strategy_spanned, Action, ParseError, PartSpans, Span, Strategy, StrategyPart,
    StrategySpans, TamperMode, Trigger,
};
use packet::field::{FieldKind, FieldValue};
use packet::{Proto, TcpFlags};

use crate::canon::{canonicalize, is_inert};
use crate::diagnostics::{Diagnostic, Severity};

/// Scenario knowledge that unlocks the context-dependent lints.
///
/// The defaults describe the simulated path (`netsim::PathConfig`)
/// and claim nothing about the censor, so context-free callers (the
/// `lint` CLI) still get the topology-aware rules.
#[derive(Debug, Clone)]
pub struct LintContext {
    /// Router hops from the strategic server to the censoring
    /// middlebox. A server-emitted packet with TTL below this dies
    /// before the censor ever sees it.
    pub hops_to_middlebox: u8,
    /// Router hops from the server all the way to the client. A
    /// packet with TTL below this can influence the censor but never
    /// reaches the client.
    pub hops_to_client: u8,
    /// TTL the engine's packets carry when no tamper touches it.
    pub default_ttl: u8,
    /// Whether the modeled censor tears down / resynchronizes its TCB
    /// on injected RSTs. `None` = unknown censor, RST lints stay
    /// quiet.
    pub censor_resyncs_on_rst: Option<bool>,
}

impl Default for LintContext {
    fn default() -> Self {
        let path = netsim::PathConfig::default();
        LintContext {
            hops_to_middlebox: path.mb_to_server_hops,
            hops_to_client: path.mb_to_server_hops + path.client_to_mb_hops,
            default_ttl: 64,
            censor_resyncs_on_rst: None,
        }
    }
}

/// Parse strategy text and lint it with default context. The returned
/// spans index straight into `source`, so [`Diagnostic::render`] can
/// quote the offending snippet.
pub fn lint(source: &str) -> Result<Vec<Diagnostic>, ParseError> {
    let (strategy, spans) = parse_strategy_spanned(source)?;
    Ok(lint_spanned(&strategy, &spans, &LintContext::default()))
}

/// Lint an already-parsed strategy. Spans are recovered by re-parsing
/// the strategy's canonical `Display` text (Display/parse round-trips
/// exactly), so they index into `strategy.to_string()`.
pub fn lint_with_context(strategy: &Strategy, ctx: &LintContext) -> Vec<Diagnostic> {
    let text = strategy.to_string();
    match parse_strategy_spanned(&text) {
        Ok((reparsed, spans)) => lint_spanned(&reparsed, &spans, ctx),
        // Display text always re-parses; if it somehow does not, lint
        // with empty spans rather than losing the findings.
        Err(_) => lint_spanned(strategy, &StrategySpans::default(), ctx),
    }
}

/// The real worker: strategy + node spans + context → findings.
pub fn lint_spanned(
    strategy: &Strategy,
    spans: &StrategySpans,
    ctx: &LintContext,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    lint_direction(&strategy.outbound, &spans.outbound, true, ctx, &mut out);
    lint_direction(&strategy.inbound, &spans.inbound, false, ctx, &mut out);
    out.sort_by_key(|d| (d.span.start, d.span.end));
    out
}

fn lint_direction(
    parts: &[StrategyPart],
    spans: &[PartSpans],
    outbound: bool,
    ctx: &LintContext,
    out: &mut Vec<Diagnostic>,
) {
    for (i, part) in parts.iter().enumerate() {
        let ps = spans.get(i);
        let part_span = ps.map(|s| s.part).unwrap_or_default();
        let trigger_span = ps.map(|s| s.trigger).unwrap_or_default();
        let node_spans: &[Span] = ps.map(|s| s.actions.as_slice()).unwrap_or(&[]);

        // -- trigger rules ------------------------------------------------
        lint_dead_branch(&part.trigger, trigger_span, out);
        lint_shadowed_trigger(parts, i, trigger_span, out);
        if outbound {
            lint_client_side_trigger(&part.trigger, trigger_span, out);
        }

        // -- node rules ---------------------------------------------------
        let mut nodes = Vec::new();
        part.action.walk(&mut |a| nodes.push(a));
        for (j, node) in nodes.iter().enumerate() {
            let span = node_spans.get(j).copied().unwrap_or(part_span);
            lint_node(node, span, outbound, ctx, out);
        }
        lint_dup_amplification(&part.action, part_span, out);

        // -- path rules ---------------------------------------------------
        if outbound {
            let paths = enumerate_paths(&part.action, ctx);
            lint_no_op_chain(&part.action, part_span, out);
            lint_checksum_futile_part(&paths, part_span, out);
            lint_handshake_severed(part, &paths, part_span, ctx, out);
            lint_synack_payload(part, &paths, part_span, out);
            lint_resync_invariant(part, &paths, part_span, ctx, out);
        } else {
            lint_no_op_chain(&part.action, part_span, out);
        }
    }
}

fn diag(
    severity: Severity,
    code: &'static str,
    span: Span,
    message: String,
    suggestion: Option<String>,
    proves_futile: bool,
) -> Diagnostic {
    Diagnostic {
        severity,
        code,
        span,
        message,
        suggestion,
        proves_futile,
    }
}

// ---------------------------------------------------------------------------
// Trigger rules
// ---------------------------------------------------------------------------

/// `dead-branch`: the trigger compares against a value the field can
/// never render as, so the part can never fire.
///
/// Triggers match by *exact string equality* against the field's
/// canonical syntax (`Trigger::matches` compares `to_syntax()`
/// output), so `TCP:sport:070` (leading zero), `TCP:sport:99999`
/// (exceeds u16) and `TCP:flags:AS` (non-canonical letter order — the
/// stack renders `SA`) are all unmatchable.
fn lint_dead_branch(trigger: &Trigger, span: Span, out: &mut Vec<Diagnostic>) {
    let Ok(kind) = trigger.field.kind() else {
        return;
    };
    let value = trigger.value.as_str();
    let reason: Option<String> = match kind {
        FieldKind::U8 | FieldKind::U16 | FieldKind::U32 | FieldKind::OptionNum => {
            let max: u64 = match kind {
                FieldKind::U8 => u64::from(u8::MAX),
                FieldKind::U16 => u64::from(u16::MAX),
                _ => u64::from(u32::MAX),
            };
            match value.parse::<u64>() {
                Err(_) => Some(format!("`{value}` is not a decimal number")),
                Ok(n) if n.to_string() != value => {
                    Some(format!("`{value}` is not canonical decimal (use `{n}`)"))
                }
                Ok(n) if n > max => Some(format!(
                    "{n} exceeds the field's maximum of {max}, no packet can carry it"
                )),
                Ok(_) => None,
            }
        }
        FieldKind::Flags => match TcpFlags::from_geneva(value) {
            None => Some(format!("`{value}` is not a valid TCP flag combination")),
            Some(flags) if flags.to_geneva() != value => Some(format!(
                "`{value}` is not in canonical flag order (the stack renders `{}`)",
                flags.to_geneva()
            )),
            Some(_) => None,
        },
        FieldKind::Bytes => None,
    };
    if let Some(reason) = reason {
        out.push(diag(
            Severity::Warning,
            "dead-branch",
            span,
            format!(
                "trigger [{}:{}] can never match: {}",
                trigger.field.to_syntax(),
                value,
                reason
            ),
            None,
            false,
        ));
    }
}

/// `shadowed-trigger`: a later part repeats an earlier part's trigger.
/// The engine applies the *first* matching part, so the later one is
/// unreachable.
fn lint_shadowed_trigger(
    parts: &[StrategyPart],
    index: usize,
    span: Span,
    out: &mut Vec<Diagnostic>,
) {
    let me = &parts[index].trigger;
    let shadowed_by = parts[..index]
        .iter()
        .position(|p| p.trigger.field == me.field && p.trigger.value == me.value);
    if let Some(first) = shadowed_by {
        out.push(diag(
            Severity::Warning,
            "shadowed-trigger",
            span,
            format!(
                "trigger [{}:{}] is shadowed by part {} with the same trigger; \
                 only the first matching part runs",
                me.field.to_syntax(),
                me.value,
                first + 1
            ),
            Some("delete this part or merge its action into the earlier one".into()),
            false,
        ));
    }
}

/// `client-side-action-in-server-strategy`: an outbound trigger on a
/// bare SYN. Servers never *emit* bare SYNs (their handshake packet is
/// the SYN+ACK), so this is client-side genetic material that can
/// never fire when the strategy is deployed server-side — the paper's
/// §3 observation that client strategies do not transplant directly.
fn lint_client_side_trigger(trigger: &Trigger, span: Span, out: &mut Vec<Diagnostic>) {
    if trigger.field.proto == Proto::Tcp && trigger.field.name == "flags" && trigger.value == "S" {
        out.push(diag(
            Severity::Warning,
            "client-side-action-in-server-strategy",
            span,
            "outbound trigger on a bare SYN: servers do not emit SYNs, so this part \
             never fires server-side"
                .into(),
            Some("trigger on the server's SYN+ACK instead: [TCP:flags:SA]".into()),
            false,
        ));
    }
}

// ---------------------------------------------------------------------------
// Node rules
// ---------------------------------------------------------------------------

fn lint_node(
    node: &Action,
    span: Span,
    outbound: bool,
    ctx: &LintContext,
    out: &mut Vec<Diagnostic>,
) {
    match node {
        // `ttl-unreachable`: the tampered packet dies before the
        // middlebox, so it cannot even confuse the censor.
        Action::Tamper {
            field,
            mode: TamperMode::Replace(value),
            ..
        } if field.proto == Proto::Ip && field.name == "ttl" => {
            let ttl = match value {
                FieldValue::Num(n) => Some(*n),
                FieldValue::Str(s) => s.parse::<u64>().ok(),
                _ => None,
            };
            if let Some(ttl) = ttl {
                if ttl < u64::from(ctx.hops_to_middlebox) {
                    out.push(diag(
                        Severity::Warning,
                        "ttl-unreachable",
                        span,
                        format!(
                            "TTL {ttl} is below the {} hops to the middlebox; the packet \
                             expires before the censor sees it",
                            ctx.hops_to_middlebox
                        ),
                        Some(format!(
                            "use a TTL in {}..{} to reach the censor but not the client",
                            ctx.hops_to_middlebox, ctx.hops_to_client
                        )),
                        false,
                    ));
                }
            }
        }
        // `degenerate-fragment`: the engine only splits TCP segments
        // and IP datagrams; for UDP/DNS/FTP it runs the first subtree
        // on the whole packet and the second subtree never executes.
        Action::Fragment { proto, .. } if matches!(proto, Proto::Udp | Proto::Dns | Proto::Ftp) => {
            out.push(diag(
                Severity::Warning,
                "degenerate-fragment",
                span,
                format!(
                    "fragment{{{}}} never splits: only the first subtree runs and the \
                     second is dead code",
                    proto.token()
                ),
                Some("fragment on TCP or IP, or replace with the first subtree".into()),
                false,
            ));
        }
        // `checksum-futile` (inbound flavour): packets we *receive*
        // already cleared the censor; corrupting their checksum only
        // makes our own stack discard them.
        Action::Tamper { field, .. } if !outbound && field.name == "chksum" => {
            out.push(diag(
                Severity::Warning,
                "checksum-futile",
                span,
                format!(
                    "corrupting {} on an inbound packet is futile: the censor already \
                     processed it, only this host's stack sees the damage",
                    field.to_syntax()
                ),
                None,
                false,
            ));
        }
        _ => {}
    }
}

/// `dup-amplification`: worst-case emitted-packet count of the tree.
/// Strategies that explode one trigger packet into many are slow to
/// simulate and trivially fingerprintable on the wire.
fn lint_dup_amplification(action: &Action, span: Span, out: &mut Vec<Diagnostic>) {
    const LIMIT: usize = 8;
    let n = max_emission(action);
    if n >= LIMIT {
        out.push(diag(
            Severity::Warning,
            "dup-amplification",
            span,
            format!(
                "this tree can emit up to {n} packets per trigger packet \
                 (amplification threshold {LIMIT})"
            ),
            Some("collapse duplicate/fragment chains".into()),
            false,
        ));
    }
}

/// Worst-case number of packets a subtree emits for one input packet.
fn max_emission(action: &Action) -> usize {
    match action {
        Action::Send => 1,
        Action::Drop => 0,
        Action::Tamper { next, .. } => max_emission(next),
        Action::Duplicate(a, b) => max_emission(a) + max_emission(b),
        Action::Fragment { first, second, .. } => max_emission(first) + max_emission(second),
    }
}

// ---------------------------------------------------------------------------
// Path rules
// ---------------------------------------------------------------------------

/// What we statically know about the packet one root-to-`send` path
/// emits.
#[derive(Debug, Clone)]
struct PathFact {
    /// The checksum is *definitely* broken when the packet leaves
    /// (a chksum tamper not followed by a re-finalizing tamper or a
    /// fragment split).
    chksum_broken: bool,
    /// The packet's TTL, when statically known.
    ttl: Option<u64>,
    /// A non-clearing tamper touched the TCP payload on this path.
    adds_payload: bool,
    /// TCP flags at emission: `None` = unknown (corrupted),
    /// `Some(s)` = canonical flag letters (possibly inherited from
    /// the trigger).
    flags: Option<Option<String>>,
}

/// Enumerate the facts for every `send` leaf of `action`. `Drop`
/// leaves emit nothing and produce no fact.
fn enumerate_paths(action: &Action, ctx: &LintContext) -> Vec<PathFact> {
    let mut out = Vec::new();
    let seed = PathFact {
        chksum_broken: false,
        ttl: Some(u64::from(ctx.default_ttl)),
        adds_payload: false,
        flags: Some(None),
    };
    walk_paths(action, seed, &mut out);
    out
}

fn walk_paths(action: &Action, mut fact: PathFact, out: &mut Vec<PathFact>) {
    match action {
        Action::Send => out.push(fact),
        Action::Drop => {}
        Action::Duplicate(a, b) => {
            walk_paths(a, fact.clone(), out);
            walk_paths(b, fact, out);
        }
        Action::Fragment { first, second, .. } => {
            // When the split happens both pieces are re-finalized, so
            // a previously broken checksum is repaired; when it does
            // not, only `first` runs on the untouched packet. Either
            // way the checksum is no longer *definitely* broken.
            let mut piece = fact.clone();
            piece.chksum_broken = false;
            walk_paths(first, piece.clone(), out);
            walk_paths(second, piece, out);
        }
        Action::Tamper { field, mode, next } => {
            if field.name == "chksum" {
                // Both corrupt and replace leave a wrong sum with
                // overwhelming probability, and mark the field so
                // serialization keeps the damage.
                fact.chksum_broken = true;
            } else if !field.is_derived() {
                // Tampering a plain field re-finalizes the packet,
                // repairing any earlier checksum damage.
                fact.chksum_broken = false;
            }
            if field.proto == Proto::Ip && field.name == "ttl" {
                fact.ttl = match mode {
                    TamperMode::Replace(FieldValue::Num(n)) => Some(*n),
                    TamperMode::Replace(FieldValue::Str(s)) => s.parse::<u64>().ok(),
                    _ => None,
                };
            }
            if field.proto == Proto::Tcp && field.name == "load" {
                let clears = match mode {
                    TamperMode::Replace(FieldValue::Empty) => true,
                    TamperMode::Replace(FieldValue::Str(s)) => s.is_empty(),
                    TamperMode::Replace(FieldValue::Bytes(b)) => b.is_empty(),
                    _ => false,
                };
                if !clears {
                    fact.adds_payload = true;
                }
            }
            if field.proto == Proto::Tcp && field.name == "flags" {
                fact.flags = match mode {
                    TamperMode::Corrupt => None,
                    TamperMode::Replace(v) => {
                        TcpFlags::from_geneva(&v.to_syntax()).map(|f| Some(f.to_geneva()))
                    }
                };
            }
            walk_paths(next, fact, out);
        }
    }
}

/// Flags a path's packet carries, given the trigger it matched.
/// `None` = statically unknown.
fn emitted_flags(part: &StrategyPart, fact: &PathFact) -> Option<String> {
    match &fact.flags {
        None => None,
        Some(None) => {
            // Untouched: inherited from the trigger when the trigger
            // pins TCP flags.
            let t = &part.trigger;
            if t.field.proto == Proto::Tcp && t.field.name == "flags" {
                TcpFlags::from_geneva(&t.value).map(|f| f.to_geneva())
            } else {
                None
            }
        }
        Some(Some(s)) => Some(s.clone()),
    }
}

/// `no-op-chain`: the whole action tree canonicalizes to a bare
/// `send` — elaborate genetic material that does exactly nothing.
fn lint_no_op_chain(action: &Action, span: Span, out: &mut Vec<Diagnostic>) {
    if !matches!(action, Action::Send) && matches!(canonicalize(action), Action::Send) {
        out.push(diag(
            Severity::Warning,
            "no-op-chain",
            span,
            "this action tree is semantically `send`: every branch either forwards \
             the packet unchanged or cancels out"
                .into(),
            Some("replace the tree with `send` (or delete the part)".into()),
            false,
        ));
    }
}

/// `checksum-futile` (outbound flavour): *every* packet this part
/// emits leaves with a broken checksum, so the client's stack drops
/// them all and the part degenerates to `drop`.
fn lint_checksum_futile_part(paths: &[PathFact], span: Span, out: &mut Vec<Diagnostic>) {
    if !paths.is_empty() && paths.iter().all(|p| p.chksum_broken) {
        out.push(diag(
            Severity::Warning,
            "checksum-futile",
            span,
            "every packet this part emits has a corrupted checksum; the client drops \
             them all, so the part behaves like `drop`"
                .into(),
            Some(
                "keep at least one branch with a valid checksum so the client still \
                 receives the real packet"
                    .into(),
            ),
            false,
        ));
    }
}

/// `handshake-severed`: the part triggers on the server's SYN+ACK and
/// *no* emitted packet can complete the handshake — either the tree
/// emits nothing (inert), or every emission is checksum-broken,
/// TTL-dead before the client, or carries flags that cannot advance a
/// client out of SYN_SENT. "Can advance" includes a bare SYN: clients
/// answer it with a SYN+ACK of their own (simultaneous open, paper §5
/// — this is exactly how Strategy 1's `replace:S` branch completes).
/// Corrupted flags are unknowable at lint time and therefore can
/// never *prove* severance.
fn lint_handshake_severed(
    part: &StrategyPart,
    paths: &[PathFact],
    span: Span,
    ctx: &LintContext,
    out: &mut Vec<Diagnostic>,
) {
    let t = &part.trigger;
    let on_synack = t.field.proto == Proto::Tcp && t.field.name == "flags" && t.value == "SA";
    if !on_synack {
        return;
    }
    let deliverable = |p: &PathFact| {
        !p.chksum_broken
            && p.ttl.is_none_or(|ttl| ttl >= u64::from(ctx.hops_to_client))
            && match emitted_flags(part, p).as_deref() {
                // Corrupt leaves the flags unknowable — possibly viable.
                None => true,
                Some(f) => f == "SA" || f == "S",
            }
    };
    let severed = if paths.is_empty() {
        // Inert tree: the SYN+ACK is swallowed entirely.
        is_inert(&part.action)
    } else {
        !paths.iter().any(deliverable)
    };
    if severed {
        let why = if paths.is_empty() {
            "it drops every SYN+ACK"
        } else {
            "every emitted packet is checksum-broken, TTL-dead before the client, \
             or flagged so it cannot advance the handshake (neither SYN+ACK nor \
             a simultaneous-open SYN)"
        };
        out.push(diag(
            Severity::Error,
            "handshake-severed",
            span,
            format!(
                "this part destroys the handshake: {why}; no connection can ever \
                 complete, so the strategy cannot beat the identity strategy"
            ),
            Some("keep one untampered branch that delivers the real SYN+ACK".into()),
            true,
        ));
    }
}

/// `synack-payload-compat`: a path delivers the real SYN+ACK *with
/// payload attached*. Linux-family clients ignore SYN+ACK payloads,
/// but Windows and macOS stacks break the connection (§7 of the
/// paper), so the strategy silently loses those client populations.
fn lint_synack_payload(
    part: &StrategyPart,
    paths: &[PathFact],
    span: Span,
    out: &mut Vec<Diagnostic>,
) {
    let t = &part.trigger;
    let on_synack = t.field.proto == Proto::Tcp && t.field.name == "flags" && t.value == "SA";
    if !on_synack {
        return;
    }
    let risky = paths.iter().any(|p| {
        p.adds_payload && !p.chksum_broken && emitted_flags(part, p).as_deref() == Some("SA")
    });
    if risky {
        let intolerant: Vec<&str> = endpoint::profile::all_profiles()
            .iter()
            .filter(|p| !p.ignores_synack_payload)
            .map(|p| p.name)
            .collect();
        if !intolerant.is_empty() {
            out.push(diag(
                Severity::Warning,
                "synack-payload-compat",
                span,
                format!(
                    "a delivered SYN+ACK carries payload; {} client profiles \
                     (e.g. {}) abort the handshake on that",
                    intolerant.len(),
                    intolerant.first().copied().unwrap_or("?")
                ),
                Some(
                    "corrupt the checksum of the payload-bearing copy so clients \
                     discard it (the paper's §7 fix)"
                        .into(),
                ),
                false,
            ));
        }
    }
}

/// `resync-invariant`: the part injects an RST expecting the censor to
/// tear down or resynchronize its TCB, but the configured censor model
/// ignores RSTs — the injection premise does not hold.
fn lint_resync_invariant(
    part: &StrategyPart,
    paths: &[PathFact],
    span: Span,
    ctx: &LintContext,
    out: &mut Vec<Diagnostic>,
) {
    if ctx.censor_resyncs_on_rst != Some(false) {
        return;
    }
    let injects_rst = paths
        .iter()
        .any(|p| emitted_flags(part, p).as_deref() == Some("R"));
    let keeps_real = paths
        .iter()
        .any(|p| emitted_flags(part, p).as_deref() != Some("R"));
    if injects_rst && keeps_real {
        out.push(diag(
            Severity::Warning,
            "resync-invariant",
            span,
            "this part injects a RST to desynchronize the censor, but the modeled \
             censor does not resynchronize on RSTs; the injected packet has no effect"
                .into(),
            Some(
                "target a censor model that tears down on RST, or evolve a \
                  different desync primitive"
                    .into(),
            ),
            false,
        ));
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;
    use geneva::parse_strategy;

    fn codes(src: &str) -> Vec<&'static str> {
        lint(src).expect("parses").iter().map(|d| d.code).collect()
    }

    fn codes_ctx(src: &str, ctx: &LintContext) -> Vec<&'static str> {
        let strategy = parse_strategy(src).expect("parses");
        lint_with_context(&strategy, ctx)
            .iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn no_op_chain_fires_on_cancelling_tree() {
        let c = codes("[TCP:flags:SA]-duplicate(drop,)-| \\/ ");
        assert!(c.contains(&"no-op-chain"), "{c:?}");
    }

    #[test]
    fn no_op_chain_quiet_on_real_duplicate() {
        let c = codes("[TCP:flags:SA]-duplicate(,)-| \\/ ");
        assert!(!c.contains(&"no-op-chain"), "{c:?}");
    }

    #[test]
    fn dead_branch_fires_on_out_of_range_port() {
        let c = codes("[TCP:sport:70000]-drop-| \\/ ");
        assert!(c.contains(&"dead-branch"), "{c:?}");
    }

    #[test]
    fn dead_branch_fires_on_non_canonical_flags() {
        let c = codes("[TCP:flags:AS]-duplicate(,)-| \\/ ");
        assert!(c.contains(&"dead-branch"), "{c:?}");
    }

    #[test]
    fn dead_branch_quiet_on_matchable_trigger() {
        let c = codes("[TCP:flags:SA]-duplicate(,)-| \\/ ");
        assert!(!c.contains(&"dead-branch"), "{c:?}");
    }

    #[test]
    fn shadowed_trigger_fires_on_repeat() {
        let c = codes("[TCP:ack:0]-duplicate(,)-|[TCP:ack:0]-drop-| \\/ ");
        assert!(c.contains(&"shadowed-trigger"), "{c:?}");
    }

    #[test]
    fn shadowed_trigger_quiet_on_distinct_triggers() {
        let c = codes("[TCP:ack:0]-duplicate(,)-|[TCP:ack:1]-drop-| \\/ ");
        assert!(!c.contains(&"shadowed-trigger"), "{c:?}");
    }

    #[test]
    fn checksum_futile_fires_when_every_path_is_broken() {
        let c = codes("[TCP:ack:0]-tamper{TCP:chksum:corrupt}-| \\/ ");
        assert!(c.contains(&"checksum-futile"), "{c:?}");
    }

    #[test]
    fn checksum_futile_fires_on_inbound_checksum_tamper() {
        let c = codes(" \\/ [TCP:flags:SA]-tamper{TCP:chksum:corrupt}-|");
        assert!(c.contains(&"checksum-futile"), "{c:?}");
    }

    #[test]
    fn checksum_futile_quiet_when_a_clean_copy_survives() {
        // The paper's insertion shape: corrupt only the duplicate.
        let c = codes("[TCP:flags:SA]-duplicate(tamper{TCP:chksum:corrupt},)-| \\/ ");
        assert!(!c.contains(&"checksum-futile"), "{c:?}");
    }

    #[test]
    fn ttl_unreachable_fires_below_middlebox_distance() {
        let c = codes("[TCP:flags:SA]-duplicate(tamper{IP:ttl:replace:2},)-| \\/ ");
        assert!(c.contains(&"ttl-unreachable"), "{c:?}");
    }

    #[test]
    fn ttl_unreachable_quiet_for_insertion_range_ttl() {
        // 10 hops: past the middlebox (8) but short of the client (12).
        let c = codes("[TCP:flags:SA]-duplicate(tamper{IP:ttl:replace:10},)-| \\/ ");
        assert!(!c.contains(&"ttl-unreachable"), "{c:?}");
    }

    #[test]
    fn dup_amplification_fires_at_eight_leaves() {
        let c = codes(
            "[TCP:flags:SA]-duplicate(duplicate(duplicate(,),duplicate(,)),\
             duplicate(duplicate(,),duplicate(,)))-| \\/ ",
        );
        assert!(c.contains(&"dup-amplification"), "{c:?}");
    }

    #[test]
    fn dup_amplification_quiet_below_threshold() {
        let c = codes("[TCP:flags:SA]-duplicate(duplicate(,),)-| \\/ ");
        assert!(!c.contains(&"dup-amplification"), "{c:?}");
    }

    #[test]
    fn client_side_trigger_fires_on_outbound_bare_syn() {
        let c = codes("[TCP:flags:S]-duplicate(,)-| \\/ ");
        assert!(
            c.contains(&"client-side-action-in-server-strategy"),
            "{c:?}"
        );
    }

    #[test]
    fn client_side_trigger_quiet_on_inbound_syn() {
        // Inbound SYNs are exactly what a server receives.
        let c = codes(" \\/ [TCP:flags:S]-duplicate(,)-|");
        assert!(
            !c.contains(&"client-side-action-in-server-strategy"),
            "{c:?}"
        );
    }

    #[test]
    fn resync_invariant_fires_against_non_resyncing_censor() {
        let ctx = LintContext {
            censor_resyncs_on_rst: Some(false),
            ..LintContext::default()
        };
        let c = codes_ctx(
            "[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},)-| \\/ ",
            &ctx,
        );
        assert!(c.contains(&"resync-invariant"), "{c:?}");
    }

    #[test]
    fn resync_invariant_quiet_without_censor_knowledge() {
        let c = codes("[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},)-| \\/ ");
        assert!(!c.contains(&"resync-invariant"), "{c:?}");
    }

    #[test]
    fn synack_payload_fires_on_payload_bearing_synack() {
        let c = codes("[TCP:flags:SA]-tamper{TCP:load:replace:AAA}-| \\/ ");
        assert!(c.contains(&"synack-payload-compat"), "{c:?}");
    }

    #[test]
    fn synack_payload_quiet_when_payload_copy_is_checksum_broken() {
        // §7 fix: the payload-bearing duplicate has a corrupted
        // checksum, so intolerant clients discard it.
        let c = codes(
            "[TCP:flags:SA]-duplicate(tamper{TCP:load:replace:AAA}\
             (tamper{TCP:chksum:corrupt}),)-| \\/ ",
        );
        assert!(!c.contains(&"synack-payload-compat"), "{c:?}");
    }

    #[test]
    fn degenerate_fragment_fires_on_udp() {
        let c = codes("[UDP:sport:53]-fragment{UDP:8:True}(,)-| \\/ ");
        assert!(c.contains(&"degenerate-fragment"), "{c:?}");
    }

    #[test]
    fn degenerate_fragment_quiet_on_tcp_segmentation() {
        let c = codes("[TCP:flags:PA]-fragment{TCP:8:True}(,)-| \\/ ");
        assert!(!c.contains(&"degenerate-fragment"), "{c:?}");
    }

    #[test]
    fn handshake_severed_fires_on_dropped_synack() {
        let diags = lint("[TCP:flags:SA]-drop-| \\/ ").expect("parses");
        let d = diags
            .iter()
            .find(|d| d.code == "handshake-severed")
            .expect("fires");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.proves_futile);
    }

    #[test]
    fn handshake_severed_fires_when_all_copies_are_broken() {
        let c = codes("[TCP:flags:SA]-tamper{TCP:chksum:corrupt}-| \\/ ");
        assert!(c.contains(&"handshake-severed"), "{c:?}");
    }

    #[test]
    fn handshake_severed_quiet_when_real_synack_survives() {
        let c = codes("[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},)-| \\/ ");
        assert!(!c.contains(&"handshake-severed"), "{c:?}");
    }

    #[test]
    fn handshake_severed_fires_when_no_emission_can_advance_syn_sent() {
        // Only a FIN reaches the client: not a SYN+ACK, not a
        // simultaneous-open SYN — the handshake never completes.
        let c = codes("[TCP:flags:SA]-tamper{TCP:flags:replace:F}-| \\/ ");
        assert!(c.contains(&"handshake-severed"), "{c:?}");
    }

    #[test]
    fn handshake_severed_quiet_on_simultaneous_open_and_corrupt_flags() {
        // Strategy 1's `replace:S` branch completes the handshake via
        // simultaneous open; corrupted flags are unknowable. Neither
        // proves severance.
        let sim_open =
            codes("[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},tamper{TCP:flags:replace:S})-| \\/ ");
        assert!(!sim_open.contains(&"handshake-severed"), "{sim_open:?}");
        let corrupt = codes("[TCP:flags:SA]-tamper{TCP:flags:corrupt}-| \\/ ");
        assert!(!corrupt.contains(&"handshake-severed"), "{corrupt:?}");
    }

    #[test]
    fn no_paper_strategy_is_statically_futile() {
        // The futility prover must be sound: every §5 strategy beats
        // the identity strategy in the paper's measurements, so none
        // may ever be rejected statically.
        for named in geneva::library::server_side() {
            let analysis = crate::analyze(&named.strategy());
            assert!(
                !analysis.statically_futile,
                "{} wrongly proven futile: {:?}",
                named.name, analysis.diagnostics
            );
        }
    }

    #[test]
    fn spans_point_into_source() {
        let src = "[TCP:sport:70000]-drop-| \\/ ";
        let diags = lint(src).expect("parses");
        let d = diags
            .iter()
            .find(|d| d.code == "dead-branch")
            .expect("fires");
        assert_eq!(&src[d.span.start..d.span.end], "[TCP:sport:70000]");
    }

    #[test]
    fn analysis_marks_futile_strategies() {
        let severed = parse_strategy("[TCP:flags:SA]-drop-| \\/ ").expect("parses");
        assert!(crate::analyze(&severed).statically_futile);
        let fine = parse_strategy("[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},)-| \\/ ")
            .expect("parses");
        assert!(!crate::analyze(&fine).statically_futile);
    }
}
