//! Rendering for `cay verify`: one [`ReportEntry`] per strategy,
//! emitted as human-readable text, plain JSON, or SARIF 2.1.0 (the
//! static-analysis interchange format CI annotators consume).
//!
//! JSON is hand-rolled — the workspace deliberately carries no serde —
//! mirroring the `dplane::metrics` idiom.

use crate::canon::CanonKey;
use crate::censor_model::{CensorId, Verdict};
use crate::diagnostics::{line_col, Diagnostic, Severity};
use crate::lints::AMPLIFICATION_LIMIT;
use crate::unsafe_scan::UnsafeScanReport;

/// What the abstract interpreter proved (or failed to prove) about a
/// strategy's compiled program. Kept as plain data so `strata` never
/// needs to see `dplane`'s error types: the binary fills it in.
#[derive(Debug, Clone)]
pub struct ProgramFacts {
    /// All proof obligations discharged.
    pub verified: bool,
    /// The verifier's complaint when `verified` is false.
    pub error: Option<String>,
    /// Proved worst-case packet-stack depth (0 when unverified).
    pub max_stack: usize,
    /// Proved worst-case emissions per trigger packet (0 when
    /// unverified).
    pub max_emit: usize,
}

/// One strategy's verification record.
#[derive(Debug, Clone)]
pub struct ReportEntry {
    /// Display name (library strategy name, or `"cli"` for ad-hoc
    /// input). Doubles as the SARIF artifact URI.
    pub label: String,
    /// The strategy source the diagnostics' spans index into.
    pub source: String,
    /// Canonical form.
    pub canonical: String,
    /// Equivalence key of the canonical form.
    pub key: CanonKey,
    /// Some error diagnostic proves the strategy futile.
    pub statically_futile: bool,
    /// Lint findings, in source order.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-censor verdicts from the product model checker
    /// ([`crate::censor_model::check_all`]); empty when no censor was
    /// requested. Verdicts are informational — `ProvablyInert` means
    /// the censor provably sees an identity flow, never that the
    /// strategy is broken — so they do not affect [`failing`].
    ///
    /// [`failing`]: ReportEntry::failing
    pub verdicts: Vec<(CensorId, Verdict)>,
    /// Compiled-program proof facts (`None` when the strategy did not
    /// parse far enough to compile).
    pub program: Option<ProgramFacts>,
}

impl ReportEntry {
    /// This entry should fail a `cay verify` run: a futility proof,
    /// any error-severity diagnostic, or a program that failed
    /// verification.
    pub fn failing(&self) -> bool {
        self.statically_futile
            || self
                .diagnostics
                .iter()
                .any(|d| d.severity == Severity::Error)
            || self.program.as_ref().is_some_and(|p| !p.verified)
    }
}

/// Human-readable report.
pub fn render_text(entries: &[ReportEntry]) -> String {
    let mut out = String::new();
    for e in entries {
        out.push_str(&format!("== {} ==\n", e.label));
        out.push_str(&format!("   source:    {}\n", e.source.trim_end()));
        out.push_str(&format!("   canonical: {}\n", e.canonical.trim_end()));
        out.push_str(&format!("   key:       {}\n", e.key));
        match &e.program {
            Some(p) if p.verified => {
                out.push_str(&format!(
                    "   program:   verified (max stack {}, max emit {})\n",
                    p.max_stack, p.max_emit
                ));
                if p.max_emit >= AMPLIFICATION_LIMIT {
                    out.push_str(&format!(
                        "   warning[program-amplification]: proved emission bound {} \
                         meets the amplification threshold {}\n",
                        p.max_emit, AMPLIFICATION_LIMIT
                    ));
                }
            }
            Some(p) => {
                out.push_str(&format!(
                    "   program:   VERIFY FAILED: {}\n",
                    p.error.as_deref().unwrap_or("unknown")
                ));
            }
            None => {}
        }
        if !e.verdicts.is_empty() {
            let cells: Vec<String> = e
                .verdicts
                .iter()
                .map(|(id, v)| format!("{}={}", id.name(), v.token()))
                .collect();
            out.push_str(&format!("   censors:   {}\n", cells.join(" ")));
        }
        if e.statically_futile {
            out.push_str("   verdict:   statically futile\n");
        }
        for d in &e.diagnostics {
            for line in d.render(&e.source).lines() {
                out.push_str(&format!("   {line}\n"));
            }
        }
        if e.diagnostics.is_empty() {
            out.push_str("   no findings\n");
        }
    }
    let failing = entries.iter().filter(|e| e.failing()).count();
    out.push_str(&format!(
        "{} strategies, {} failing\n",
        entries.len(),
        failing
    ));
    out
}

/// Render the per-censor verdict matrix: one row per strategy, one
/// column per checked censor. The shape `cay verify --censor all`
/// prints (and CI diffs against its committed snapshot).
pub fn render_verdict_matrix(entries: &[ReportEntry]) -> String {
    let censors: Vec<CensorId> = entries
        .iter()
        .find(|e| !e.verdicts.is_empty())
        .map(|e| e.verdicts.iter().map(|(id, _)| *id).collect())
        .unwrap_or_default();
    if censors.is_empty() {
        return "no per-censor verdicts (run with --censor)\n".to_string();
    }
    let label_w = entries
        .iter()
        .map(|e| e.label.len())
        .chain(std::iter::once("strategy".len()))
        .max()
        .unwrap_or(0);
    let col_w = censors
        .iter()
        .map(|id| id.name().len())
        .chain(std::iter::once("desynced".len()))
        .max()
        .unwrap_or(0);
    let mut out = format!("{:label_w$}", "strategy");
    for id in &censors {
        out.push_str(&format!("  {:col_w$}", id.name()));
    }
    out.push('\n');
    out.push_str(&"-".repeat(label_w + censors.len() * (col_w + 2)));
    out.push('\n');
    for e in entries {
        out.push_str(&format!("{:label_w$}", e.label));
        for id in &censors {
            let token = e
                .verdicts
                .iter()
                .find(|(v_id, _)| v_id == id)
                .map_or("-", |(_, v)| v.token());
            out.push_str(&format!("  {token:col_w$}"));
        }
        out.push('\n');
    }
    out
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn opt_str(s: &Option<String>) -> String {
    match s {
        Some(s) => format!("\"{}\"", esc(s)),
        None => "null".into(),
    }
}

/// Plain JSON report: `{"strategies": [...], "failing": n}`.
pub fn render_json(entries: &[ReportEntry]) -> String {
    let items: Vec<String> = entries.iter().map(entry_json).collect();
    let failing = entries.iter().filter(|e| e.failing()).count();
    format!(
        "{{\"strategies\":[{}],\"failing\":{}}}\n",
        items.join(","),
        failing
    )
}

/// One [`ReportEntry`] as a JSON object — shared by [`render_json`]
/// and the control plane's reload responses ([`render_reload_json`]).
fn entry_json(e: &ReportEntry) -> String {
    {
        let diags: Vec<String> = e
            .diagnostics
            .iter()
            .map(|d| {
                let (line, col) = line_col(&e.source, d.span.start);
                format!(
                    "{{\"severity\":\"{}\",\"code\":\"{}\",\"start\":{},\"end\":{},\
                     \"line\":{line},\"col\":{col},\"message\":\"{}\",\
                     \"suggestion\":{},\"proves_futile\":{}}}",
                    d.severity,
                    d.code,
                    d.span.start,
                    d.span.end,
                    esc(&d.message),
                    opt_str(&d.suggestion),
                    d.proves_futile
                )
            })
            .collect();
        let program = match &e.program {
            Some(p) => format!(
                "{{\"verified\":{},\"error\":{},\"max_stack\":{},\"max_emit\":{}}}",
                p.verified,
                opt_str(&p.error),
                p.max_stack,
                p.max_emit
            ),
            None => "null".into(),
        };
        let verdicts: Vec<String> = e
            .verdicts
            .iter()
            .map(|(id, v)| {
                format!(
                    "{{\"censor\":\"{}\",\"verdict\":\"{}\"}}",
                    id.name(),
                    v.token()
                )
            })
            .collect();
        format!(
            "{{\"label\":\"{}\",\"source\":\"{}\",\"canonical\":\"{}\",\"key\":\"{}\",\
             \"statically_futile\":{},\"diagnostics\":[{}],\"verdicts\":[{}],\"program\":{}}}",
            esc(&e.label),
            esc(&e.source),
            esc(&e.canonical),
            e.key,
            e.statically_futile,
            diags.join(","),
            verdicts.join(","),
            program
        )
    }
}

/// The hot-reload verdict document served by `POST /config`: whether
/// the new configuration was applied, the full verification record of
/// every candidate strategy (diagnostics with spans, per-censor
/// verdicts, compiled-program proof facts), and — when refused — the
/// gate's complaint. A refusal response is the operator's only window
/// into *why* the old program stayed live, so it carries the same
/// entry detail as `cay verify --format json`.
pub fn render_reload_json(applied: bool, entries: &[ReportEntry], error: Option<&str>) -> String {
    let items: Vec<String> = entries.iter().map(entry_json).collect();
    format!(
        "{{\"applied\":{applied},\"error\":{},\"strategies\":[{}]}}\n",
        opt_str(&error.map(String::from)),
        items.join(",")
    )
}

/// One SARIF result line. `properties` is a pre-rendered JSON object
/// for the result's property bag, or empty for none.
#[allow(clippy::too_many_arguments)] // flat mirror of the SARIF result shape
fn sarif_result(
    rule: &str,
    level: &str,
    message: &str,
    uri: &str,
    source: &str,
    start: usize,
    end: usize,
    properties: &str,
) -> String {
    let (line, col) = line_col(source, start);
    let props = if properties.is_empty() {
        String::new()
    } else {
        format!(",\"properties\":{properties}")
    };
    format!(
        "{{\"ruleId\":\"{}\",\"level\":\"{level}\",\"message\":{{\"text\":\"{}\"}},\
         \"locations\":[{{\"physicalLocation\":{{\
         \"artifactLocation\":{{\"uri\":\"{}\"}},\
         \"region\":{{\"startLine\":{line},\"startColumn\":{col},\
         \"charOffset\":{start},\"charLength\":{}}}}}}}]{props}}}",
        esc(rule),
        esc(message),
        esc(uri),
        end.saturating_sub(start)
    )
}

/// Rule metadata for the SARIF `tool.driver.rules` table: a
/// one-sentence `fullDescription` plus a `helpUri` into the design
/// docs. Every lint code and synthetic rule the reporter can emit has
/// a row (the `sarif_rules_all_have_help` test enforces it).
fn rule_help(id: &str) -> (&'static str, &'static str) {
    const LINTS_URI: &str = "DESIGN.md#7-strata-static-analysis-of-strategies";
    const ABSINT_URI: &str =
        "DESIGN.md#11-strataabsint-abstract-interpretation-and-proof-gated-compilation";
    const CENSOR_URI: &str = "DESIGN.md#12-stratacensor_model-per-censor-product-model-checking";
    const UNSAFE_URI: &str = "DESIGN.md#17-the-unsafe-confinement-gate";
    match id {
        "dead-branch" => (
            "The trigger compares a field against a value it can never hold, so the part never fires.",
            LINTS_URI,
        ),
        "shadowed-trigger" => (
            "A later part repeats an earlier part's trigger; first-match-wins makes it unreachable.",
            LINTS_URI,
        ),
        "client-side-action-in-server-strategy" => (
            "The outbound tree triggers on a client-sent packet the server never forwards.",
            LINTS_URI,
        ),
        "ttl-unreachable" => (
            "The written TTL dies before the censoring middlebox, so the packet influences nothing.",
            LINTS_URI,
        ),
        "degenerate-fragment" => (
            "The fragment action cannot split the packet (offset 0 or past the payload).",
            LINTS_URI,
        ),
        "checksum-futile" => (
            "Every emitted copy carries a broken checksum, so no endpoint stack accepts any of them.",
            LINTS_URI,
        ),
        "dup-amplification" => (
            "Worst-case emission count per trigger packet meets the amplification threshold.",
            LINTS_URI,
        ),
        "no-op-chain" => (
            "The whole action tree canonicalizes to a bare send — it does exactly nothing.",
            LINTS_URI,
        ),
        "handshake-severed" => (
            "No emitted packet can advance the client out of SYN_SENT; no connection ever completes.",
            LINTS_URI,
        ),
        "seq-desync-kills-client" => (
            "Every handshake-advancing packet rewrites TCP seq; the server ignores the client's ack forever.",
            LINTS_URI,
        ),
        "ack-desync-kills-client" => (
            "Every handshake-advancing packet rewrites TCP ack; the client answers with a RST.",
            LINTS_URI,
        ),
        "deliverable-rst-resets-client" => (
            "A valid RST+ACK definitely reaches the client before any handshake-completing packet.",
            LINTS_URI,
        ),
        "window-zero-stalls-client" => (
            "The delivered SYN+ACK advertises a zero receive window; the client cannot send data.",
            LINTS_URI,
        ),
        "checksum-left-broken-reaches-client" => (
            "A data-bearing packet reaches the client with its checksum still broken and is dropped there.",
            LINTS_URI,
        ),
        "synack-payload-compat" => (
            "The real SYN+ACK is delivered carrying a payload; client stacks differ on accepting it.",
            LINTS_URI,
        ),
        "resync-invariant" => (
            "The part injects a RST to resynchronize the censor, but the modeled censor ignores RSTs.",
            LINTS_URI,
        ),
        "program-verify-failed" => (
            "The abstract interpreter could not discharge the compiled program's proof obligations.",
            ABSINT_URI,
        ),
        "program-amplification" => (
            "The proved worst-case emission bound meets the amplification threshold.",
            ABSINT_URI,
        ),
        "censor-verdict" => (
            "Per-censor verdicts from the censor-product model checker: provably inert, provably desynced, or unknown.",
            CENSOR_URI,
        ),
        "unsafe-confinement" => (
            "The `unsafe` keyword appears outside the workspace's audited files (the svc FFI shim and the bench counting allocator).",
            UNSAFE_URI,
        ),
        _ => ("", LINTS_URI),
    }
}

/// SARIF 2.1.0 report. Diagnostics map one-to-one onto results; three
/// synthetic rules surface analysis-level facts: `program-verify-failed`
/// (the abstract interpreter refused the compiled program),
/// `program-amplification` (the proved emission bound meets the
/// [`AMPLIFICATION_LIMIT`] threshold), and `censor-verdict` (one
/// note-level result per entry carrying the per-censor verdict matrix
/// in its property bag). Every rule in `tool.driver.rules` carries a
/// `fullDescription` and a `helpUri` into `DESIGN.md`.
pub fn render_sarif(entries: &[ReportEntry]) -> String {
    let mut rules: Vec<&str> = Vec::new();
    let note_rule = |rules: &mut Vec<&str>, id: &'static str| {
        if !rules.contains(&id) {
            rules.push(id);
        }
    };
    let mut results = Vec::new();
    for e in entries {
        for d in &e.diagnostics {
            let level = match d.severity {
                Severity::Warning => "warning",
                Severity::Error => "error",
            };
            results.push(sarif_result(
                d.code,
                level,
                &d.message,
                &e.label,
                &e.source,
                d.span.start,
                d.span.end,
                "",
            ));
        }
        if !e.verdicts.is_empty() {
            note_rule(&mut rules, "censor-verdict");
            let summary: Vec<String> = e
                .verdicts
                .iter()
                .map(|(id, v)| format!("{}={}", id.name(), v.token()))
                .collect();
            let props: Vec<String> = e
                .verdicts
                .iter()
                .map(|(id, v)| format!("\"{}\":\"{}\"", id.name(), v.token()))
                .collect();
            results.push(sarif_result(
                "censor-verdict",
                "note",
                &format!("per-censor static verdicts: {}", summary.join(", ")),
                &e.label,
                &e.source,
                0,
                e.source.len(),
                &format!("{{\"verdicts\":{{{}}}}}", props.join(",")),
            ));
        }
        match &e.program {
            Some(p) if !p.verified => {
                note_rule(&mut rules, "program-verify-failed");
                results.push(sarif_result(
                    "program-verify-failed",
                    "error",
                    &format!(
                        "compiled program failed verification: {}",
                        p.error.as_deref().unwrap_or("unknown")
                    ),
                    &e.label,
                    &e.source,
                    0,
                    e.source.len(),
                    "",
                ));
            }
            Some(p) if p.max_emit >= AMPLIFICATION_LIMIT => {
                note_rule(&mut rules, "program-amplification");
                results.push(sarif_result(
                    "program-amplification",
                    "warning",
                    &format!(
                        "proved worst-case emission bound {} meets the amplification \
                         threshold {AMPLIFICATION_LIMIT}",
                        p.max_emit
                    ),
                    &e.label,
                    &e.source,
                    0,
                    e.source.len(),
                    "",
                ));
            }
            _ => {}
        }
    }
    for e in entries {
        for d in &e.diagnostics {
            note_rule(&mut rules, d.code);
        }
    }
    rules.sort_unstable();
    let rules_json: Vec<String> = rules
        .iter()
        .map(|id| {
            let (description, help_uri) = rule_help(id);
            format!(
                "{{\"id\":\"{}\",\"fullDescription\":{{\"text\":\"{}\"}},\
                 \"helpUri\":\"{}\"}}",
                esc(id),
                esc(description),
                esc(help_uri)
            )
        })
        .collect();
    format!(
        "{{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":{{\
         \"name\":\"cay-verify\",\"rules\":[{}]}}}},\"results\":[{}]}}]}}\n",
        rules_json.join(","),
        results.join(",")
    )
}

/// Human-readable unsafe-confinement report.
pub fn render_unsafe_text(report: &UnsafeScanReport) -> String {
    let mut out = format!(
        "unsafe-confinement: {} files scanned, {} audited files, {} findings\n",
        report.files_scanned,
        report.allowed_files.len(),
        report.findings.len()
    );
    for file in &report.allowed_files {
        out.push_str(&format!("   audited:  {file}\n"));
    }
    for f in &report.findings {
        let (line, col) = line_col(&f.source, f.offset);
        out.push_str(&format!(
            "   error[unsafe-confinement]: {}:{line}:{col}: {}\n",
            f.file, f.excerpt
        ));
    }
    if report.clean() {
        out.push_str("   confinement holds\n");
    }
    out
}

/// Plain JSON unsafe-confinement report.
pub fn render_unsafe_json(report: &UnsafeScanReport) -> String {
    let allowed: Vec<String> = report
        .allowed_files
        .iter()
        .map(|f| format!("\"{}\"", esc(f)))
        .collect();
    let findings: Vec<String> = report
        .findings
        .iter()
        .map(|f| {
            let (line, col) = line_col(&f.source, f.offset);
            format!(
                "{{\"file\":\"{}\",\"offset\":{},\"line\":{line},\"col\":{col},\
                 \"excerpt\":\"{}\"}}",
                esc(&f.file),
                f.offset,
                esc(&f.excerpt)
            )
        })
        .collect();
    format!(
        "{{\"files_scanned\":{},\"allowed_files\":[{}],\"findings\":[{}],\"clean\":{}}}\n",
        report.files_scanned,
        allowed.join(","),
        findings.join(","),
        report.clean()
    )
}

/// SARIF 2.1.0 unsafe-confinement report: one `unsafe-confinement`
/// result per escaped keyword, under the same tool driver as the
/// strategy reports so CI annotators treat both uniformly.
pub fn render_unsafe_sarif(report: &UnsafeScanReport) -> String {
    let results: Vec<String> = report
        .findings
        .iter()
        .map(|f| {
            sarif_result(
                "unsafe-confinement",
                "error",
                &format!("keyword escaped the audited files: {}", f.excerpt),
                &f.file,
                &f.source,
                f.offset,
                f.offset + f.len,
                "",
            )
        })
        .collect();
    let (description, help_uri) = rule_help("unsafe-confinement");
    format!(
        "{{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":{{\
         \"name\":\"cay-verify\",\"rules\":[{{\"id\":\"unsafe-confinement\",\
         \"fullDescription\":{{\"text\":\"{}\"}},\"helpUri\":\"{}\"}}]}}}},\
         \"results\":[{}]}}]}}\n",
        esc(description),
        esc(help_uri),
        results.join(",")
    )
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code
    use super::*;
    use crate::analyze;
    use geneva::parse_strategy;

    fn entry(source: &str, verified: bool) -> ReportEntry {
        let strategy = parse_strategy(source).unwrap();
        let a = analyze(&strategy);
        ReportEntry {
            label: "test".into(),
            source: source.into(),
            canonical: a.canonical.to_string(),
            key: a.key,
            statically_futile: a.statically_futile,
            diagnostics: a.diagnostics,
            verdicts: crate::censor_model::check_all(&crate::summarize(&strategy)),
            program: Some(ProgramFacts {
                verified,
                error: (!verified).then(|| "op 1 jumps backward to 0".into()),
                max_stack: 2,
                max_emit: 2,
            }),
        }
    }

    #[test]
    fn text_report_counts_failures() {
        let ok = entry("[TCP:flags:SA]-duplicate(,)-| \\/ ", true);
        let bad = entry("[TCP:flags:SA]-drop-| \\/ ", true);
        let text = render_text(&[ok, bad]);
        assert!(text.contains("2 strategies, 1 failing"), "{text}");
        assert!(text.contains("handshake-severed"), "{text}");
    }

    #[test]
    fn json_report_is_structurally_sound() {
        let json = render_json(&[entry("[TCP:flags:SA]-drop-| \\/ ", true)]);
        assert!(json.contains("\"statically_futile\":true"), "{json}");
        assert!(json.contains("\"code\":\"handshake-severed\""), "{json}");
        assert!(json.contains("\"line\":1"), "{json}");
        // Balanced braces/brackets — the usual hand-rolled-JSON slip.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "{json}"
        );
    }

    #[test]
    fn sarif_report_carries_rules_and_locations() {
        let sarif = render_sarif(&[entry("[TCP:flags:SA]-drop-| \\/ ", true)]);
        assert!(sarif.contains("\"version\":\"2.1.0\""), "{sarif}");
        assert!(
            sarif.contains("\"ruleId\":\"handshake-severed\""),
            "{sarif}"
        );
        assert!(sarif.contains("\"startLine\":1"), "{sarif}");
        assert!(sarif.contains("{\"id\":\"handshake-severed\""), "{sarif}");
        // Rule metadata: every rule row documents itself.
        assert!(
            sarif.contains("\"fullDescription\":{\"text\":\"No emitted packet"),
            "{sarif}"
        );
        assert!(
            sarif.contains("\"helpUri\":\"DESIGN.md#7-strata-static-analysis-of-strategies\""),
            "{sarif}"
        );
    }

    #[test]
    fn sarif_rules_all_have_help() {
        for id in [
            "dead-branch",
            "shadowed-trigger",
            "client-side-action-in-server-strategy",
            "ttl-unreachable",
            "degenerate-fragment",
            "checksum-futile",
            "dup-amplification",
            "no-op-chain",
            "handshake-severed",
            "seq-desync-kills-client",
            "ack-desync-kills-client",
            "deliverable-rst-resets-client",
            "window-zero-stalls-client",
            "checksum-left-broken-reaches-client",
            "synack-payload-compat",
            "resync-invariant",
            "program-verify-failed",
            "program-amplification",
            "censor-verdict",
            "unsafe-confinement",
        ] {
            let (description, uri) = rule_help(id);
            assert!(!description.is_empty(), "no fullDescription for {id}");
            assert!(uri.starts_with("DESIGN.md#"), "bad helpUri for {id}");
        }
    }

    #[test]
    fn verdicts_render_in_every_format() {
        // Strategy 11's shape: provably desynced against Kazakhstan,
        // unknown against the stochastic GFW.
        let e = entry(
            "[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:},)-| \\/ ",
            true,
        );
        assert!(!e.verdicts.is_empty());

        let text = render_text(std::slice::from_ref(&e));
        assert!(text.contains("censors:"), "{text}");
        assert!(text.contains("Kazakhstan=desynced"), "{text}");
        assert!(text.contains("GFW=unknown"), "{text}");

        let json = render_json(std::slice::from_ref(&e));
        assert!(
            json.contains("{\"censor\":\"Kazakhstan\",\"verdict\":\"desynced\"}"),
            "{json}"
        );

        let sarif = render_sarif(std::slice::from_ref(&e));
        assert!(sarif.contains("\"ruleId\":\"censor-verdict\""), "{sarif}");
        assert!(sarif.contains("\"level\":\"note\""), "{sarif}");
        assert!(sarif.contains("\"properties\":{\"verdicts\":{"), "{sarif}");
        assert!(sarif.contains("\"Kazakhstan\":\"desynced\""), "{sarif}");
        assert_eq!(sarif.matches('{').count(), sarif.matches('}').count());

        let matrix = render_verdict_matrix(std::slice::from_ref(&e));
        assert!(matrix.starts_with("strategy"), "{matrix}");
        assert!(matrix.contains("GFW"), "{matrix}");
        assert!(matrix.contains("desynced"), "{matrix}");
    }

    #[test]
    fn verdict_matrix_without_verdicts_points_at_the_flag() {
        let mut e = entry("[TCP:flags:SA]-duplicate(,)-| \\/ ", true);
        e.verdicts.clear();
        let matrix = render_verdict_matrix(&[e]);
        assert!(matrix.contains("--censor"), "{matrix}");
    }

    #[test]
    fn unsafe_scan_renders_in_every_format() {
        use crate::unsafe_scan::{UnsafeFinding, UnsafeScanReport};
        // Assembled at runtime so this test file never matches its own
        // scanner.
        let kw = ["un", "safe"].concat();
        let source = format!("fn a() {{}}\n{kw} fn b() {{}}\n");
        let report = UnsafeScanReport {
            files_scanned: 2,
            allowed_files: vec!["crates/svc/src/sys/ffi.rs".into()],
            findings: vec![UnsafeFinding {
                file: "crates/x/src/lib.rs".into(),
                source: source.clone(),
                offset: 10,
                len: kw.len(),
                excerpt: source.lines().nth(1).unwrap().to_string(),
            }],
        };

        let text = render_unsafe_text(&report);
        assert!(text.contains("2 files scanned"), "{text}");
        assert!(
            text.contains("audited:  crates/svc/src/sys/ffi.rs"),
            "{text}"
        );
        assert!(
            text.contains("error[unsafe-confinement]: crates/x/src/lib.rs:2:1"),
            "{text}"
        );

        let json = render_unsafe_json(&report);
        assert!(json.contains("\"clean\":false"), "{json}");
        assert!(json.contains("\"line\":2"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        let sarif = render_unsafe_sarif(&report);
        assert!(
            sarif.contains("\"ruleId\":\"unsafe-confinement\""),
            "{sarif}"
        );
        assert!(sarif.contains("\"startLine\":2"), "{sarif}");
        assert!(
            sarif.contains("\"helpUri\":\"DESIGN.md#17-the-unsafe-confinement-gate\""),
            "{sarif}"
        );
        assert_eq!(sarif.matches('{').count(), sarif.matches('}').count());

        let clean = UnsafeScanReport {
            files_scanned: 2,
            allowed_files: Vec::new(),
            findings: Vec::new(),
        };
        assert!(render_unsafe_text(&clean).contains("confinement holds"));
        assert!(render_unsafe_json(&clean).contains("\"clean\":true"));
    }

    #[test]
    fn sarif_reports_verify_failures() {
        let sarif = render_sarif(&[entry("[TCP:flags:SA]-duplicate(,)-| \\/ ", false)]);
        assert!(
            sarif.contains("\"ruleId\":\"program-verify-failed\""),
            "{sarif}"
        );
        assert!(sarif.contains("\"level\":\"error\""), "{sarif}");
    }
}
