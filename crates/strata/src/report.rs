//! Rendering for `cay verify`: one [`ReportEntry`] per strategy,
//! emitted as human-readable text, plain JSON, or SARIF 2.1.0 (the
//! static-analysis interchange format CI annotators consume).
//!
//! JSON is hand-rolled — the workspace deliberately carries no serde —
//! mirroring the `dplane::metrics` idiom.

use crate::canon::CanonKey;
use crate::diagnostics::{line_col, Diagnostic, Severity};
use crate::lints::AMPLIFICATION_LIMIT;

/// What the abstract interpreter proved (or failed to prove) about a
/// strategy's compiled program. Kept as plain data so `strata` never
/// needs to see `dplane`'s error types: the binary fills it in.
#[derive(Debug, Clone)]
pub struct ProgramFacts {
    /// All proof obligations discharged.
    pub verified: bool,
    /// The verifier's complaint when `verified` is false.
    pub error: Option<String>,
    /// Proved worst-case packet-stack depth (0 when unverified).
    pub max_stack: usize,
    /// Proved worst-case emissions per trigger packet (0 when
    /// unverified).
    pub max_emit: usize,
}

/// One strategy's verification record.
#[derive(Debug, Clone)]
pub struct ReportEntry {
    /// Display name (library strategy name, or `"cli"` for ad-hoc
    /// input). Doubles as the SARIF artifact URI.
    pub label: String,
    /// The strategy source the diagnostics' spans index into.
    pub source: String,
    /// Canonical form.
    pub canonical: String,
    /// Equivalence key of the canonical form.
    pub key: CanonKey,
    /// Some error diagnostic proves the strategy futile.
    pub statically_futile: bool,
    /// Lint findings, in source order.
    pub diagnostics: Vec<Diagnostic>,
    /// Compiled-program proof facts (`None` when the strategy did not
    /// parse far enough to compile).
    pub program: Option<ProgramFacts>,
}

impl ReportEntry {
    /// This entry should fail a `cay verify` run: a futility proof,
    /// any error-severity diagnostic, or a program that failed
    /// verification.
    pub fn failing(&self) -> bool {
        self.statically_futile
            || self
                .diagnostics
                .iter()
                .any(|d| d.severity == Severity::Error)
            || self.program.as_ref().is_some_and(|p| !p.verified)
    }
}

/// Human-readable report.
pub fn render_text(entries: &[ReportEntry]) -> String {
    let mut out = String::new();
    for e in entries {
        out.push_str(&format!("== {} ==\n", e.label));
        out.push_str(&format!("   source:    {}\n", e.source.trim_end()));
        out.push_str(&format!("   canonical: {}\n", e.canonical.trim_end()));
        out.push_str(&format!("   key:       {}\n", e.key));
        match &e.program {
            Some(p) if p.verified => {
                out.push_str(&format!(
                    "   program:   verified (max stack {}, max emit {})\n",
                    p.max_stack, p.max_emit
                ));
                if p.max_emit >= AMPLIFICATION_LIMIT {
                    out.push_str(&format!(
                        "   warning[program-amplification]: proved emission bound {} \
                         meets the amplification threshold {}\n",
                        p.max_emit, AMPLIFICATION_LIMIT
                    ));
                }
            }
            Some(p) => {
                out.push_str(&format!(
                    "   program:   VERIFY FAILED: {}\n",
                    p.error.as_deref().unwrap_or("unknown")
                ));
            }
            None => {}
        }
        if e.statically_futile {
            out.push_str("   verdict:   statically futile\n");
        }
        for d in &e.diagnostics {
            for line in d.render(&e.source).lines() {
                out.push_str(&format!("   {line}\n"));
            }
        }
        if e.diagnostics.is_empty() {
            out.push_str("   no findings\n");
        }
    }
    let failing = entries.iter().filter(|e| e.failing()).count();
    out.push_str(&format!(
        "{} strategies, {} failing\n",
        entries.len(),
        failing
    ));
    out
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn opt_str(s: &Option<String>) -> String {
    match s {
        Some(s) => format!("\"{}\"", esc(s)),
        None => "null".into(),
    }
}

/// Plain JSON report: `{"strategies": [...], "failing": n}`.
pub fn render_json(entries: &[ReportEntry]) -> String {
    let mut items = Vec::with_capacity(entries.len());
    for e in entries {
        let diags: Vec<String> = e
            .diagnostics
            .iter()
            .map(|d| {
                let (line, col) = line_col(&e.source, d.span.start);
                format!(
                    "{{\"severity\":\"{}\",\"code\":\"{}\",\"start\":{},\"end\":{},\
                     \"line\":{line},\"col\":{col},\"message\":\"{}\",\
                     \"suggestion\":{},\"proves_futile\":{}}}",
                    d.severity,
                    d.code,
                    d.span.start,
                    d.span.end,
                    esc(&d.message),
                    opt_str(&d.suggestion),
                    d.proves_futile
                )
            })
            .collect();
        let program = match &e.program {
            Some(p) => format!(
                "{{\"verified\":{},\"error\":{},\"max_stack\":{},\"max_emit\":{}}}",
                p.verified,
                opt_str(&p.error),
                p.max_stack,
                p.max_emit
            ),
            None => "null".into(),
        };
        items.push(format!(
            "{{\"label\":\"{}\",\"source\":\"{}\",\"canonical\":\"{}\",\"key\":\"{}\",\
             \"statically_futile\":{},\"diagnostics\":[{}],\"program\":{}}}",
            esc(&e.label),
            esc(&e.source),
            esc(&e.canonical),
            e.key,
            e.statically_futile,
            diags.join(","),
            program
        ));
    }
    let failing = entries.iter().filter(|e| e.failing()).count();
    format!(
        "{{\"strategies\":[{}],\"failing\":{}}}\n",
        items.join(","),
        failing
    )
}

/// One SARIF result line.
fn sarif_result(
    rule: &str,
    level: &str,
    message: &str,
    uri: &str,
    source: &str,
    start: usize,
    end: usize,
) -> String {
    let (line, col) = line_col(source, start);
    format!(
        "{{\"ruleId\":\"{}\",\"level\":\"{level}\",\"message\":{{\"text\":\"{}\"}},\
         \"locations\":[{{\"physicalLocation\":{{\
         \"artifactLocation\":{{\"uri\":\"{}\"}},\
         \"region\":{{\"startLine\":{line},\"startColumn\":{col},\
         \"charOffset\":{start},\"charLength\":{}}}}}}}]}}",
        esc(rule),
        esc(message),
        esc(uri),
        end.saturating_sub(start)
    )
}

/// SARIF 2.1.0 report. Diagnostics map one-to-one onto results; two
/// synthetic rules surface program-level facts: `program-verify-failed`
/// (the abstract interpreter refused the compiled program) and
/// `program-amplification` (the proved emission bound meets the
/// [`AMPLIFICATION_LIMIT`] threshold).
pub fn render_sarif(entries: &[ReportEntry]) -> String {
    let mut rules: Vec<&str> = Vec::new();
    let note_rule = |rules: &mut Vec<&str>, id: &'static str| {
        if !rules.contains(&id) {
            rules.push(id);
        }
    };
    let mut results = Vec::new();
    for e in entries {
        for d in &e.diagnostics {
            let level = match d.severity {
                Severity::Warning => "warning",
                Severity::Error => "error",
            };
            results.push(sarif_result(
                d.code,
                level,
                &d.message,
                &e.label,
                &e.source,
                d.span.start,
                d.span.end,
            ));
        }
        match &e.program {
            Some(p) if !p.verified => {
                note_rule(&mut rules, "program-verify-failed");
                results.push(sarif_result(
                    "program-verify-failed",
                    "error",
                    &format!(
                        "compiled program failed verification: {}",
                        p.error.as_deref().unwrap_or("unknown")
                    ),
                    &e.label,
                    &e.source,
                    0,
                    e.source.len(),
                ));
            }
            Some(p) if p.max_emit >= AMPLIFICATION_LIMIT => {
                note_rule(&mut rules, "program-amplification");
                results.push(sarif_result(
                    "program-amplification",
                    "warning",
                    &format!(
                        "proved worst-case emission bound {} meets the amplification \
                         threshold {AMPLIFICATION_LIMIT}",
                        p.max_emit
                    ),
                    &e.label,
                    &e.source,
                    0,
                    e.source.len(),
                ));
            }
            _ => {}
        }
    }
    for e in entries {
        for d in &e.diagnostics {
            note_rule(&mut rules, d.code);
        }
    }
    rules.sort_unstable();
    let rules_json: Vec<String> = rules
        .iter()
        .map(|id| format!("{{\"id\":\"{}\"}}", esc(id)))
        .collect();
    format!(
        "{{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":{{\
         \"name\":\"cay-verify\",\"rules\":[{}]}}}},\"results\":[{}]}}]}}\n",
        rules_json.join(","),
        results.join(",")
    )
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code
    use super::*;
    use crate::analyze;
    use geneva::parse_strategy;

    fn entry(source: &str, verified: bool) -> ReportEntry {
        let strategy = parse_strategy(source).unwrap();
        let a = analyze(&strategy);
        ReportEntry {
            label: "test".into(),
            source: source.into(),
            canonical: a.canonical.to_string(),
            key: a.key,
            statically_futile: a.statically_futile,
            diagnostics: a.diagnostics,
            program: Some(ProgramFacts {
                verified,
                error: (!verified).then(|| "op 1 jumps backward to 0".into()),
                max_stack: 2,
                max_emit: 2,
            }),
        }
    }

    #[test]
    fn text_report_counts_failures() {
        let ok = entry("[TCP:flags:SA]-duplicate(,)-| \\/ ", true);
        let bad = entry("[TCP:flags:SA]-drop-| \\/ ", true);
        let text = render_text(&[ok, bad]);
        assert!(text.contains("2 strategies, 1 failing"), "{text}");
        assert!(text.contains("handshake-severed"), "{text}");
    }

    #[test]
    fn json_report_is_structurally_sound() {
        let json = render_json(&[entry("[TCP:flags:SA]-drop-| \\/ ", true)]);
        assert!(json.contains("\"statically_futile\":true"), "{json}");
        assert!(json.contains("\"code\":\"handshake-severed\""), "{json}");
        assert!(json.contains("\"line\":1"), "{json}");
        // Balanced braces/brackets — the usual hand-rolled-JSON slip.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "{json}"
        );
    }

    #[test]
    fn sarif_report_carries_rules_and_locations() {
        let sarif = render_sarif(&[entry("[TCP:flags:SA]-drop-| \\/ ", true)]);
        assert!(sarif.contains("\"version\":\"2.1.0\""), "{sarif}");
        assert!(
            sarif.contains("\"ruleId\":\"handshake-severed\""),
            "{sarif}"
        );
        assert!(sarif.contains("\"startLine\":1"), "{sarif}");
        assert!(sarif.contains("{\"id\":\"handshake-severed\"}"), "{sarif}");
    }

    #[test]
    fn sarif_reports_verify_failures() {
        let sarif = render_sarif(&[entry("[TCP:flags:SA]-duplicate(,)-| \\/ ", false)]);
        assert!(
            sarif.contains("\"ruleId\":\"program-verify-failed\""),
            "{sarif}"
        );
        assert!(sarif.contains("\"level\":\"error\""), "{sarif}");
    }
}
