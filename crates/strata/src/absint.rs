//! Abstract interpretation over strategies and compiled programs.
//!
//! Two front ends share this module:
//!
//! * **Front end A** ([`verify_ops`]) walks a lowered instruction
//!   sequence ([`AbsOp`] — the neutral mirror of `dplane::program::Op`)
//!   over an abstract stack domain and discharges three proof
//!   obligations per program body:
//!
//!   1. **stack discipline** — no instruction consumes from an empty
//!      stack, the maximum depth is statically bounded, and the body
//!      consumes exactly its one input packet (final depth zero);
//!   2. **termination** — every `Jump`/`Split` target is strictly
//!      forward, so the control-flow graph is a DAG (trivially
//!      reducible, no back-edges at all) and execution visits each
//!      instruction at most once;
//!   3. **bounded amplification** — a worst-case emitted-packet count
//!      per trigger packet, finite by the DAG property and computed
//!      exactly by joining emission counts over `Split` alternatives.
//!
//!   The per-slot abstract value is a checksum state ([`SlotState`]):
//!   a packet slot is `Valid` when it was provably produced by the
//!   engine's own `finalize` (or its byte-identical RFC 1624
//!   incremental path), which is what licenses the `TrustedValid`
//!   tamper fast path downstream.
//!
//! * **Front end B** ([`summarize`], [`action_effects`]) walks Geneva
//!   strategy trees computing a [`FieldEffect`] summary per emitted
//!   path: for each header field Untouched (absent from the map) /
//!   `Written(value)` / `Corrupted`, plus a three-state checksum
//!   lattice Valid / Broken / Refinalized. [`summarize`] canonicalizes
//!   first, so `CanonKey`-equal strategies get identical summaries by
//!   construction.
//!
//! Soundness conventions (shared with `lints`): a *futility* proof may
//! only rely on facts that hold on every dynamic execution, so unknown
//! values (corrupted flags, corrupted TTLs) always count in the
//! strategy's favour. The analyses treat a `corrupt` draw landing on
//! the field's original value (2⁻³² for seq/ack, 2⁻¹⁶ for checksums)
//! as impossible — the same tolerance the engine's own
//! "corrupt-checksum-stays-broken" semantics already assume.

use std::collections::BTreeMap;
use std::fmt;

use geneva::ast::{Action, TamperMode, Trigger};
use geneva::Strategy;
use packet::field::{FieldRef, FieldValue};
use packet::{Proto, TcpFlags};

use crate::canon::{canonicalize_strategy, fold_value, CanonKey};

// ---------------------------------------------------------------------------
// Front end A: abstract stack machine over lowered programs
// ---------------------------------------------------------------------------

/// Neutral mirror of `dplane::program::Op`, carrying exactly the facts
/// the abstract interpreter needs. `dplane` lowers its ops into this
/// form (`strata` cannot depend on `dplane` — the dependency points the
/// other way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsOp {
    /// Pop the top packet and emit it.
    Emit,
    /// Pop the top packet and discard it.
    Pop,
    /// Push a copy of the top packet.
    Dup,
    /// Rewrite one field of the top packet.
    Tamper(TamperKind),
    /// Try to split the top packet: on success two finalized pieces
    /// replace it and control falls through; otherwise control jumps
    /// to `nosplit` with the stack unchanged.
    Split {
        /// Jump target for the nothing-to-split case.
        nosplit: usize,
    },
    /// Unconditional forward jump.
    Jump(usize),
}

/// What a tamper does to the packet's checksum validity — the only
/// field-level fact front end A tracks per op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TamperKind {
    /// Non-derived field: the engine re-finalizes afterwards (or takes
    /// the byte-identical incremental path), leaving a canonical
    /// packet with verifying checksums.
    Refinalizing,
    /// A checksum field: the stored (bogus) value rides to the wire.
    BreaksChecksum,
    /// Another derived field (`len`, `dataofs`, …): the store is kept
    /// verbatim and the packet's validity is no longer known.
    OtherDerived,
}

/// Abstract checksum state of one stack slot.
///
/// `Valid` is the load-bearing fact: it means the packet is exactly
/// what the engine's own `finalize` produces — derived fields
/// canonical and both checksums verifying — so the two O(n) runtime
/// scans guarding the incremental-checksum fast path are provably
/// redundant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SlotState {
    /// Nothing is known (the wire input packet, or a join of
    /// disagreeing paths). The conservative top of the lattice.
    Unknown,
    /// Provably a fixed point of `finalize`.
    Valid,
    /// A checksum field holds a stored, almost-certainly-wrong value.
    Broken,
}

impl SlotState {
    fn join(self, other: SlotState) -> SlotState {
        if self == other {
            self
        } else {
            SlotState::Unknown
        }
    }
}

/// Hard cap on the abstract (and therefore concrete) stack depth.
/// Compiled trees reach depth ≈ nesting of `duplicate`/`fragment`;
/// anything past this is pathological.
pub const MAX_STACK: usize = 128;

/// Hard cap on the provable worst-case emission count. The DAG
/// property already makes the bound finite; this rejects programs
/// whose finite bound is still absurd.
pub const MAX_EMIT: usize = 4096;

/// Why a program body failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A `Jump`/`Split` target does not move strictly forward — the
    /// termination proof fails.
    JumpBackward {
        /// Offending instruction index.
        pc: usize,
        /// Its target.
        target: usize,
    },
    /// A `Jump`/`Split` target lies outside the program.
    JumpOutOfBounds {
        /// Offending instruction index.
        pc: usize,
        /// Its target.
        target: usize,
        /// Program length.
        len: usize,
    },
    /// An instruction consumes from a provably empty stack.
    StackUnderflow {
        /// Offending instruction index.
        pc: usize,
    },
    /// The abstract stack exceeds [`MAX_STACK`].
    StackOverflow {
        /// Offending instruction index.
        pc: usize,
        /// Depth reached.
        depth: usize,
    },
    /// The body terminates without consuming its input packet
    /// (final stack depth non-zero).
    LeakedStack {
        /// A reachable final depth ≠ 0.
        depth: usize,
    },
    /// The provable worst-case emission count exceeds [`MAX_EMIT`].
    Amplification {
        /// The count at the point it blew the cap.
        emit: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::JumpBackward { pc, target } => {
                write!(
                    f,
                    "op {pc} jumps backward to {target}: termination unprovable"
                )
            }
            VerifyError::JumpOutOfBounds { pc, target, len } => {
                write!(f, "op {pc} jumps to {target}, past the program end {len}")
            }
            VerifyError::StackUnderflow { pc } => {
                write!(f, "op {pc} consumes from an empty packet stack")
            }
            VerifyError::StackOverflow { pc, depth } => {
                write!(
                    f,
                    "op {pc} grows the packet stack to {depth} (cap {MAX_STACK})"
                )
            }
            VerifyError::LeakedStack { depth } => {
                write!(f, "body ends with {depth} packet(s) still on the stack")
            }
            VerifyError::Amplification { emit } => {
                write!(f, "worst-case emission {emit} exceeds the cap {MAX_EMIT}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// The discharged proof obligations of one verified body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpsProof {
    /// Maximum packet-stack depth over every path.
    pub max_stack: usize,
    /// Worst-case number of emitted packets per trigger packet.
    pub max_emit: usize,
    /// Per instruction: `true` iff it is a `Tamper` whose top-of-stack
    /// packet is [`SlotState::Valid`] on *every* path reaching it —
    /// the license for the `TrustedValid` fast path.
    pub tamper_valid: Vec<bool>,
}

/// Abstractly interpret one body. See the module docs for the proof
/// obligations; `Err` means installation must be refused (or the
/// caller explicitly opted out with `--unchecked`).
pub fn verify_ops(ops: &[AbsOp]) -> Result<OpsProof, VerifyError> {
    let len = ops.len();
    // Termination: every control transfer is strictly forward, so pc
    // is strictly increasing along any execution and bounded by `len`.
    for (pc, op) in ops.iter().enumerate() {
        let target = match op {
            AbsOp::Split { nosplit } => Some(*nosplit),
            AbsOp::Jump(t) => Some(*t),
            _ => None,
        };
        if let Some(target) = target {
            if target > len {
                return Err(VerifyError::JumpOutOfBounds { pc, target, len });
            }
            if target <= pc {
                return Err(VerifyError::JumpBackward { pc, target });
            }
        }
    }

    // One abstract state per (pc, stack depth): slot states joined
    // slot-wise, emission count joined by max. Forward-only edges mean
    // a single in-order sweep sees every predecessor before its
    // successors.
    type Stack = (Vec<SlotState>, usize);
    let mut states: Vec<BTreeMap<usize, Stack>> = vec![BTreeMap::new(); len + 1];
    states[0].insert(1, (vec![SlotState::Unknown], 0));
    let mut max_stack = 1usize;
    let mut tamper_tops: Vec<Option<SlotState>> = vec![None; len];

    fn flow(
        states: &mut [BTreeMap<usize, (Vec<SlotState>, usize)>],
        to: usize,
        stack: (Vec<SlotState>, usize),
    ) {
        let depth = stack.0.len();
        match states[to].get_mut(&depth) {
            Some((slots, emits)) => {
                for (slot, new) in slots.iter_mut().zip(stack.0) {
                    *slot = slot.join(new);
                }
                *emits = (*emits).max(stack.1);
            }
            None => {
                states[to].insert(depth, stack);
            }
        }
    }

    for pc in 0..len {
        let here: Vec<Stack> = states[pc].values().cloned().collect();
        for (mut slots, emits) in here {
            max_stack = max_stack.max(slots.len());
            match &ops[pc] {
                AbsOp::Emit => {
                    if slots.pop().is_none() {
                        return Err(VerifyError::StackUnderflow { pc });
                    }
                    let emits = emits + 1;
                    if emits > MAX_EMIT {
                        return Err(VerifyError::Amplification { emit: emits });
                    }
                    flow(&mut states, pc + 1, (slots, emits));
                }
                AbsOp::Pop => {
                    if slots.pop().is_none() {
                        return Err(VerifyError::StackUnderflow { pc });
                    }
                    flow(&mut states, pc + 1, (slots, emits));
                }
                AbsOp::Dup => {
                    let Some(top) = slots.last().copied() else {
                        return Err(VerifyError::StackUnderflow { pc });
                    };
                    slots.push(top);
                    if slots.len() > MAX_STACK {
                        return Err(VerifyError::StackOverflow {
                            pc,
                            depth: slots.len(),
                        });
                    }
                    flow(&mut states, pc + 1, (slots, emits));
                }
                AbsOp::Tamper(kind) => {
                    let Some(top) = slots.last_mut() else {
                        return Err(VerifyError::StackUnderflow { pc });
                    };
                    let entry = *top;
                    tamper_tops[pc] = Some(match tamper_tops[pc] {
                        None => entry,
                        Some(seen) => seen.join(entry),
                    });
                    *top = match kind {
                        TamperKind::Refinalizing => SlotState::Valid,
                        TamperKind::BreaksChecksum => SlotState::Broken,
                        TamperKind::OtherDerived => SlotState::Unknown,
                    };
                    flow(&mut states, pc + 1, (slots, emits));
                }
                AbsOp::Split { nosplit } => {
                    if slots.is_empty() {
                        return Err(VerifyError::StackUnderflow { pc });
                    }
                    // No-split edge: the packet stays put, untouched.
                    flow(&mut states, *nosplit, (slots.clone(), emits));
                    // Split edge: two freshly finalized pieces.
                    slots.pop();
                    slots.push(SlotState::Valid);
                    slots.push(SlotState::Valid);
                    if slots.len() > MAX_STACK {
                        return Err(VerifyError::StackOverflow {
                            pc,
                            depth: slots.len(),
                        });
                    }
                    flow(&mut states, pc + 1, (slots, emits));
                }
                AbsOp::Jump(target) => {
                    flow(&mut states, *target, (slots, emits));
                }
            }
        }
    }

    let mut max_emit = 0usize;
    for (depth, (_, emits)) in &states[len] {
        if *depth != 0 {
            return Err(VerifyError::LeakedStack { depth: *depth });
        }
        max_emit = max_emit.max(*emits);
    }
    let tamper_valid = ops
        .iter()
        .enumerate()
        .map(|(pc, op)| matches!(op, AbsOp::Tamper(_)) && tamper_tops[pc] == Some(SlotState::Valid))
        .collect();
    Ok(OpsProof {
        max_stack,
        max_emit,
        tamper_valid,
    })
}

// ---------------------------------------------------------------------------
// Front end B: FieldEffect summaries over strategy trees
// ---------------------------------------------------------------------------

/// What one emitted path did to a single header field. A field absent
/// from the map is *Untouched*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldEffect {
    /// Replaced with a statically known value (folded the same way
    /// `FieldRef::set` stores it).
    Written(FieldValue),
    /// Overwritten with a value unknowable at analysis time (`corrupt`,
    /// whose per-site PRNG depends on the dynamic packet bytes).
    Corrupted,
}

/// Checksum state of one emitted path's packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChecksumEffect {
    /// Never touched: the wire checksums the host's stack wrote.
    Valid,
    /// A checksum field holds a stored bogus value; the client's stack
    /// drops the packet.
    Broken,
    /// Was broken (or split) and then repaired by a re-finalizing
    /// tamper or a fragment finalize. Verifies like `Valid`.
    Refinalized,
}

/// The abstract packet one root-to-`send` path emits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathEffect {
    /// Per-field effects, keyed by `FieldRef::to_syntax()` (e.g.
    /// `"TCP:seq"`). Absent key = untouched.
    pub fields: BTreeMap<String, FieldEffect>,
    /// Checksum validity at emission.
    pub checksum: ChecksumEffect,
    /// The path crosses a `fragment` node, so its field facts describe
    /// a superset of dynamic behaviours (the split may or may not
    /// happen, and the second piece's `seq` shifts by the cut).
    /// Order-sensitive proofs must skip such parts.
    pub via_fragment: bool,
}

impl PathEffect {
    fn untouched() -> PathEffect {
        PathEffect {
            fields: BTreeMap::new(),
            checksum: ChecksumEffect::Valid,
            via_fragment: false,
        }
    }

    /// The effect on one field (`None` = untouched).
    pub fn effect(&self, field_syntax: &str) -> Option<&FieldEffect> {
        self.fields.get(field_syntax)
    }

    /// The checksum is *definitely* wrong at emission.
    pub fn checksum_broken(&self) -> bool {
        self.checksum == ChecksumEffect::Broken
    }

    /// The packet's TTL when statically known; `None` = unknowable
    /// (corrupted or non-numeric write).
    pub fn ttl(&self, default_ttl: u8) -> Option<u64> {
        match self.effect("IP:ttl") {
            None => Some(u64::from(default_ttl)),
            Some(FieldEffect::Written(FieldValue::Num(n))) => Some(*n),
            Some(FieldEffect::Written(FieldValue::Str(s))) => s.parse().ok(),
            Some(_) => None,
        }
    }

    /// A non-clearing write touched the TCP payload on this path.
    pub fn adds_payload(&self) -> bool {
        match self.effect("TCP:load") {
            None => false,
            Some(FieldEffect::Written(FieldValue::Empty)) => false,
            // Corrupting an empty payload invents a short random one.
            Some(_) => true,
        }
    }

    /// Canonical TCP flags at emission, inheriting from the trigger
    /// when untouched. `None` = statically unknown.
    pub fn emitted_flags(&self, trigger: &Trigger) -> Option<TcpFlags> {
        match self.effect("TCP:flags") {
            None => {
                if trigger.field.proto == Proto::Tcp && trigger.field.name == "flags" {
                    TcpFlags::from_geneva(&trigger.value)
                } else {
                    None
                }
            }
            Some(FieldEffect::Written(FieldValue::Str(s))) => TcpFlags::from_geneva(s),
            Some(_) => None,
        }
    }
}

/// Enumerate the [`PathEffect`] of every `send` leaf of `action`,
/// in emission order (`duplicate` left-to-right; `fragment` respects
/// its `in_order` flag). `drop` leaves emit nothing.
pub fn action_effects(action: &Action) -> Vec<PathEffect> {
    let mut out = Vec::new();
    walk_effects(action, PathEffect::untouched(), &mut out);
    out
}

fn walk_effects(action: &Action, mut eff: PathEffect, out: &mut Vec<PathEffect>) {
    match action {
        Action::Send => out.push(eff),
        Action::Drop => {}
        Action::Duplicate(a, b) => {
            walk_effects(a, eff.clone(), out);
            walk_effects(b, eff, out);
        }
        Action::Fragment {
            proto,
            in_order,
            first,
            second,
            ..
        } => {
            // Application-layer fragments never split: only `first`
            // runs, on the untouched packet.
            if matches!(proto, Proto::Udp | Proto::Dns | Proto::Ftp) {
                walk_effects(first, eff, out);
                return;
            }
            // When the split happens both pieces are re-finalized; when
            // it does not, only `first` runs on the untouched packet.
            // Either way the checksum is no longer *definitely* broken,
            // and field facts become a superset of dynamic behaviour —
            // `via_fragment` tells order-sensitive proofs to stand down.
            eff.via_fragment = true;
            if eff.checksum == ChecksumEffect::Broken {
                eff.checksum = ChecksumEffect::Refinalized;
            }
            if *in_order {
                walk_effects(first, eff.clone(), out);
                walk_effects(second, eff, out);
            } else {
                walk_effects(second, eff.clone(), out);
                walk_effects(first, eff, out);
            }
        }
        Action::Tamper { field, mode, next } => {
            if field.name == "chksum" {
                // Both corrupt and replace leave a wrong sum with
                // overwhelming probability.
                eff.checksum = ChecksumEffect::Broken;
            } else if !field.is_derived() {
                // A plain-field tamper re-finalizes: earlier checksum
                // damage is repaired and every stored derived-field
                // write is recomputed from scratch.
                if eff.checksum == ChecksumEffect::Broken {
                    eff.checksum = ChecksumEffect::Refinalized;
                }
                eff.fields.retain(|key, _| !derived_syntax(key));
            }
            let effect = match mode {
                TamperMode::Corrupt => FieldEffect::Corrupted,
                TamperMode::Replace(value) => FieldEffect::Written(fold_value(field, value)),
            };
            eff.fields.insert(field.to_syntax(), effect);
            walk_effects(next, eff, out);
        }
    }
}

fn derived_syntax(key: &str) -> bool {
    FieldRef::parse(key)
        .map(|f| f.is_derived())
        .unwrap_or(false)
}

/// Worst-case number of packets a subtree emits for one trigger
/// packet. This is the tree-level twin of [`OpsProof::max_emit`]; the
/// two bounds agree for every compilable tree (`Split`'s no-split arm
/// runs `first` alone, which never emits more than `first + second`).
pub fn max_emission(action: &Action) -> usize {
    match action {
        Action::Send => 1,
        Action::Drop => 0,
        Action::Tamper { next, .. } => max_emission(next),
        Action::Duplicate(a, b) => max_emission(a) + max_emission(b),
        Action::Fragment { first, second, .. } => max_emission(first) + max_emission(second),
    }
}

/// Static summary of one strategy part.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartSummary {
    /// The part's trigger, verbatim.
    pub trigger: Trigger,
    /// One [`PathEffect`] per emitted path, in emission order.
    pub paths: Vec<PathEffect>,
    /// Worst-case emissions per trigger packet.
    pub max_emit: usize,
}

/// Static summary of a whole strategy, computed on its canonical form
/// so `CanonKey`-equal strategies share summaries by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrategySummary {
    /// Equivalence key of the canonical form the summary describes.
    pub key: CanonKey,
    /// Outbound part summaries.
    pub outbound: Vec<PartSummary>,
    /// Inbound part summaries.
    pub inbound: Vec<PartSummary>,
}

/// Summarize a strategy. Canonicalizes first: two strategies with the
/// same [`CanonKey`] get byte-identical summaries.
pub fn summarize(strategy: &Strategy) -> StrategySummary {
    let canonical = canonicalize_strategy(strategy);
    let key = CanonKey::of(&canonical);
    let part_summary = |part: &geneva::StrategyPart| PartSummary {
        trigger: part.trigger.clone(),
        paths: action_effects(&part.action),
        max_emit: max_emission(&part.action),
    };
    StrategySummary {
        key,
        outbound: canonical.outbound.iter().map(part_summary).collect(),
        inbound: canonical.inbound.iter().map(part_summary).collect(),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code
    use super::*;
    use geneva::parse_strategy;

    fn effects(text: &str) -> Vec<PathEffect> {
        let s = parse_strategy(text).unwrap();
        action_effects(&s.outbound[0].action)
    }

    // -- front end A --------------------------------------------------------

    #[test]
    fn straight_line_body_verifies() {
        // tamper(seq) then emit: depth never exceeds 1, one emission.
        let ops = [AbsOp::Tamper(TamperKind::Refinalizing), AbsOp::Emit];
        let proof = verify_ops(&ops).unwrap();
        assert_eq!((proof.max_stack, proof.max_emit), (1, 1));
        assert_eq!(
            proof.tamper_valid,
            vec![false, false],
            "wire packet is Unknown"
        );
    }

    #[test]
    fn chained_tampers_earn_trusted_valid() {
        // The first tamper refinalizes, so the second sees Valid.
        let ops = [
            AbsOp::Tamper(TamperKind::Refinalizing),
            AbsOp::Tamper(TamperKind::Refinalizing),
            AbsOp::Emit,
        ];
        let proof = verify_ops(&ops).unwrap();
        assert_eq!(proof.tamper_valid, vec![false, true, false]);
    }

    #[test]
    fn checksum_break_poisons_trust() {
        let ops = [
            AbsOp::Tamper(TamperKind::BreaksChecksum),
            AbsOp::Tamper(TamperKind::Refinalizing),
            AbsOp::Emit,
        ];
        let proof = verify_ops(&ops).unwrap();
        assert_eq!(proof.tamper_valid, vec![false, false, false]);
    }

    #[test]
    fn duplicate_body_counts_both_emissions() {
        // Dup; Emit; Emit = duplicate(,).
        let ops = [AbsOp::Dup, AbsOp::Emit, AbsOp::Emit];
        let proof = verify_ops(&ops).unwrap();
        assert_eq!((proof.max_stack, proof.max_emit), (2, 2));
    }

    #[test]
    fn split_takes_max_over_alternatives() {
        // fragment(,): Split; Emit; Emit; Jump end; Emit (nosplit body).
        let ops = [
            AbsOp::Split { nosplit: 4 },
            AbsOp::Emit,
            AbsOp::Emit,
            AbsOp::Jump(5),
            AbsOp::Emit,
        ];
        let proof = verify_ops(&ops).unwrap();
        assert_eq!(proof.max_emit, 2, "split path emits 2, no-split path 1");
        assert_eq!(proof.max_stack, 2);
    }

    #[test]
    fn backward_jump_is_refused() {
        let ops = [AbsOp::Emit, AbsOp::Jump(0)];
        assert_eq!(
            verify_ops(&ops),
            Err(VerifyError::JumpBackward { pc: 1, target: 0 })
        );
    }

    #[test]
    fn out_of_bounds_jump_is_refused() {
        let ops = [AbsOp::Jump(9)];
        assert_eq!(
            verify_ops(&ops),
            Err(VerifyError::JumpOutOfBounds {
                pc: 0,
                target: 9,
                len: 1
            })
        );
    }

    #[test]
    fn underflow_is_refused() {
        let ops = [AbsOp::Emit, AbsOp::Emit];
        assert_eq!(verify_ops(&ops), Err(VerifyError::StackUnderflow { pc: 1 }));
    }

    #[test]
    fn leaked_stack_is_refused() {
        let ops = [AbsOp::Dup, AbsOp::Emit];
        assert_eq!(verify_ops(&ops), Err(VerifyError::LeakedStack { depth: 1 }));
    }

    #[test]
    fn empty_body_leaks_its_input() {
        assert_eq!(verify_ops(&[]), Err(VerifyError::LeakedStack { depth: 1 }));
    }

    // -- front end B --------------------------------------------------------

    #[test]
    fn untouched_send_has_empty_effect() {
        let paths = effects("[TCP:flags:SA]-duplicate(,)-| \\/ ");
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert!(p.fields.is_empty());
            assert_eq!(p.checksum, ChecksumEffect::Valid);
            assert!(!p.via_fragment);
        }
    }

    #[test]
    fn checksum_tamper_breaks_then_refinalizes() {
        let paths =
            effects("[TCP:flags:SA]-tamper{TCP:chksum:corrupt}(tamper{TCP:seq:replace:5},)-| \\/ ");
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].checksum, ChecksumEffect::Refinalized);
        assert_eq!(
            paths[0].effect("TCP:seq"),
            Some(&FieldEffect::Written(FieldValue::Num(5)))
        );
        // The refinalize recomputed the stored checksum: no stale entry.
        assert_eq!(paths[0].effect("TCP:chksum"), None);
    }

    #[test]
    fn corrupt_marks_field_corrupted() {
        let paths = effects("[TCP:flags:SA]-tamper{TCP:ack:corrupt}-| \\/ ");
        assert_eq!(paths[0].effect("TCP:ack"), Some(&FieldEffect::Corrupted));
        assert_eq!(paths[0].checksum, ChecksumEffect::Valid);
    }

    #[test]
    fn fragment_marks_paths_and_repairs_checksum() {
        let paths = effects(
            "[TCP:flags:PA]-tamper{TCP:chksum:corrupt}(fragment{TCP:8:False}(,drop),)-| \\/ ",
        );
        assert_eq!(paths.len(), 1, "second subtree drops");
        assert!(paths[0].via_fragment);
        assert_eq!(paths[0].checksum, ChecksumEffect::Refinalized);
    }

    #[test]
    fn emitted_flags_inherit_from_trigger() {
        let s = parse_strategy("[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},)-| \\/ ")
            .unwrap();
        let part = &s.outbound[0];
        let paths = action_effects(&part.action);
        assert_eq!(
            paths[0].emitted_flags(&part.trigger),
            TcpFlags::from_geneva("R")
        );
        assert_eq!(
            paths[1].emitted_flags(&part.trigger),
            TcpFlags::from_geneva("SA")
        );
    }

    #[test]
    fn summaries_are_canonicalization_invariant() {
        let a = parse_strategy("[TCP:flags:SA]-duplicate(drop,tamper{TCP:seq:replace:7})-| \\/ ")
            .unwrap();
        let b = parse_strategy(
            "[TCP:flags:SA]-tamper{TCP:seq:corrupt}(tamper{TCP:seq:replace:7},)-| \\/ ",
        )
        .unwrap();
        assert_eq!(summarize(&a), summarize(&b));
    }

    #[test]
    fn tree_and_program_amplification_agree_on_duplicates() {
        let s = parse_strategy("[TCP:flags:SA]-duplicate(duplicate(,),)-| \\/ ").unwrap();
        assert_eq!(max_emission(&s.outbound[0].action), 3);
    }
}
