//! Unsafe-confinement scan: the workspace's `unsafe`-audit gate as a
//! strata check instead of a CI shell one-liner.
//!
//! The workspace rule: `unsafe` code lives in exactly two audited
//! files — the raw-FFI shim `crates/svc/src/sys/ffi.rs` (epoll,
//! recvmmsg/sendmmsg, eventfd) and the counting allocator
//! `crates/bench/src/alloc.rs` — and nowhere else. Every other crate
//! either carries `#![forbid(unsafe_code)]` or inherits the
//! workspace-level `unsafe_code = "deny"` lint. This scan is the
//! belt-and-suspenders layer on top of those attributes: it re-checks
//! the sources themselves, so dropping an attribute (or adding an
//! `#![allow]`) cannot silently widen the surface.
//!
//! The match is textual, deliberately mirroring the CI grep it
//! replaces: the keyword followed by a space (so `unsafe_code` in lint
//! attributes never matches, and backtick-quoted mentions in doc
//! comments — the repo's idiom — do not either). `cay verify
//! --unsafe-scan` runs it over `crates/` and reports findings through
//! the same text/JSON/SARIF renderers as strategy verification, under
//! the rule id `unsafe-confinement`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The audited files allowed to contain `unsafe` code.
pub const UNSAFE_ALLOWLIST: &[&str] = &["crates/svc/src/sys/ffi.rs", "crates/bench/src/alloc.rs"];

/// One occurrence of the keyword outside the allowlist.
#[derive(Debug, Clone)]
pub struct UnsafeFinding {
    /// Root-relative path, `/`-separated (stable across hosts; doubles
    /// as the SARIF artifact URI).
    pub file: String,
    /// Full file text (the renderers derive line/column from it).
    pub source: String,
    /// Byte offset of the keyword.
    pub offset: usize,
    /// Byte length of the matched keyword.
    pub len: usize,
    /// The offending line, trimmed.
    pub excerpt: String,
}

/// What one scan covered and found.
#[derive(Debug, Clone, Default)]
pub struct UnsafeScanReport {
    /// Rust sources examined.
    pub files_scanned: usize,
    /// Allowlisted files that do contain the keyword — confinement
    /// working as intended, listed so the report shows the audited
    /// surface explicitly.
    pub allowed_files: Vec<String>,
    /// Keyword occurrences outside the allowlist. Any entry here fails
    /// the gate.
    pub findings: Vec<UnsafeFinding>,
}

impl UnsafeScanReport {
    /// True when confinement holds.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// The needle, assembled at runtime so this file never contains its
/// own match (the scanner scans `strata` too).
fn needle() -> String {
    ["un", "safe "].concat()
}

/// Scan every `.rs` file under `root` for `unsafe` occurrences outside
/// `allowlist` (paths relative to `root`'s parent — i.e. spelled like
/// [`UNSAFE_ALLOWLIST`] when `root` is `crates`). Hidden directories
/// and `target/` are skipped.
pub fn scan_unsafe(root: &Path, allowlist: &[&str]) -> io::Result<UnsafeScanReport> {
    let base = root.parent().unwrap_or(Path::new(""));
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let needle = needle();
    let mut report = UnsafeScanReport::default();
    for path in files {
        let rel = path
            .strip_prefix(base)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let source = fs::read_to_string(&path)?;
        report.files_scanned += 1;
        let hits: Vec<usize> = match_indices(&source, &needle);
        if hits.is_empty() {
            continue;
        }
        if allowlist.contains(&rel.as_str()) {
            report.allowed_files.push(rel);
            continue;
        }
        for offset in hits {
            let line_start = source[..offset].rfind('\n').map_or(0, |i| i + 1);
            let line_end = source[offset..]
                .find('\n')
                .map_or(source.len(), |i| offset + i);
            report.findings.push(UnsafeFinding {
                file: rel.clone(),
                source: source.clone(),
                offset,
                // Report the keyword alone, not its trailing space.
                len: needle.len() - 1,
                excerpt: source[line_start..line_end].trim().to_string(),
            });
        }
    }
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || name == "target" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn match_indices(haystack: &str, needle: &str) -> Vec<usize> {
    haystack.match_indices(needle).map(|(i, _)| i).collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code
    use super::*;

    fn write(dir: &Path, rel: &str, text: &str) {
        let path = dir.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, text).unwrap();
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("strata-unsafe-scan-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn finds_keyword_outside_allowlist_only() {
        let dir = tempdir("basic");
        let kw = needle();
        write(
            &dir,
            "crates/svc/src/sys/ffi.rs",
            &format!("{kw}fn audited() {{}}\n"),
        );
        write(
            &dir,
            "crates/packet/src/lib.rs",
            &format!("fn a() {{}}\n{kw}fn leaked() {{}}\n"),
        );
        write(&dir, "crates/packet/src/clean.rs", "fn b() {}\n");
        let report = scan_unsafe(&dir.join("crates"), UNSAFE_ALLOWLIST).unwrap();
        assert_eq!(report.files_scanned, 3);
        assert_eq!(report.allowed_files, vec!["crates/svc/src/sys/ffi.rs"]);
        assert_eq!(report.findings.len(), 1);
        assert!(!report.clean());
        let f = &report.findings[0];
        assert_eq!(f.file, "crates/packet/src/lib.rs");
        assert_eq!(f.offset, 10);
        assert!(f.excerpt.contains("leaked"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lint_attribute_and_quoted_mentions_do_not_match() {
        let dir = tempdir("attr");
        write(
            &dir,
            "crates/x/src/lib.rs",
            "#![forbid(unsafe_code)]\n//! Not a finding: `unsafe` in backticks.\n",
        );
        let report = scan_unsafe(&dir.join("crates"), UNSAFE_ALLOWLIST).unwrap();
        assert!(report.clean(), "{:?}", report.findings);
        assert_eq!(report.files_scanned, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// The real gate, run against the real workspace when invoked from
    /// its root (CI runs `cay verify --unsafe-scan`; this keeps the
    /// library path honest too).
    #[test]
    fn workspace_confinement_holds() {
        let crates = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("crates");
        let report = scan_unsafe(&crates, UNSAFE_ALLOWLIST).unwrap();
        assert!(
            report.clean(),
            "keyword escaped the audited files: {:?}",
            report
                .findings
                .iter()
                .map(|f| format!("{}:{}", f.file, f.excerpt.clone()))
                .collect::<Vec<_>>()
        );
        assert!(report.files_scanned > 50, "scan must have walked the tree");
    }
}
