//! Canonicalization: rewrite a strategy to a normal form with
//! *byte-identical* engine semantics, then hash it into a [`CanonKey`].
//!
//! Every rewrite below preserves `Engine::apply_outbound` /
//! `apply_inbound` output exactly, for every packet and every seed.
//! That guarantee leans on the engine's per-site corrupt PRNG (a pure
//! function of seed, packet bytes and field name): deleting a dead
//! subtree cannot shift the random values drawn elsewhere.
//!
//! Rewrites, applied bottom-up to a fixed point:
//!
//! * **inert collapse** — a subtree that can never emit a packet
//!   (`drop`, `tamper(..→inert)`, `duplicate(inert,inert)`,
//!   `fragment(inert,inert)`) becomes `drop`;
//! * **duplicate identities** — `duplicate(drop,x) → x`,
//!   `duplicate(x,drop) → x`;
//! * **degenerate fragment** — `fragment{UDP/DNS/FTP:..}(a,b) → a`
//!   (the engine never splits application-layer protos, the second
//!   subtree is unreachable);
//! * **dead store** — `tamper{f:*}(tamper{f:replace:v}(k))` →
//!   `tamper{f:replace:v}(k)`: the first write is fully shadowed
//!   (`finalize` recomputes every derived field from scratch, so no
//!   residue of the shadowed write survives);
//! * **value folding** — replace-values are folded to the
//!   representation `FieldRef::set` actually stores: numeric fields
//!   fold any value through `numeric()` to `Num`, option fields fold
//!   non-empty values to `Num`, byte fields fold `Str("")`/`Bytes([])`
//!   to `Empty`, flag strings fold to `TcpFlags` canonical order;
//! * **part-level cleanup** — parts whose trigger duplicates an
//!   earlier part's are unreachable and dropped; a trailing part whose
//!   action is `send` equals the no-match fallthrough and is dropped.
//!
//! Deliberately *not* done: sorting `duplicate` branches. Emission
//! order is wire-visible (the censor sees the packets in sequence), so
//! `duplicate(a,b)` and `duplicate(b,a)` are different strategies.

use geneva::ast::{Action, StrategyPart, TamperMode};
use geneva::Strategy;
use packet::field::{FieldKind, FieldRef, FieldValue};
use packet::{Proto, TcpFlags};

/// Equivalence-class hash of a canonical strategy. Two strategies with
/// equal keys produce identical engine output (up to hash collision,
/// ~2⁻⁶⁴ per pair) for every packet and seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonKey(pub u64);

impl CanonKey {
    /// Hash an (already canonical) strategy. Call
    /// [`canonicalize_strategy`] first — hashing a non-canonical tree
    /// gives a key that distinguishes equivalent strategies.
    pub fn of(canonical: &Strategy) -> CanonKey {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in canonical.to_string().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        CanonKey(hash)
    }
}

impl std::fmt::Display for CanonKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Can this subtree ever emit a packet? `false` means the subtree is
/// equivalent to `drop` for every input.
pub fn is_inert(action: &Action) -> bool {
    match action {
        Action::Send => false,
        Action::Drop => true,
        Action::Tamper { next, .. } => is_inert(next),
        Action::Duplicate(a, b) => is_inert(a) && is_inert(b),
        // A fragment that doesn't split runs only `first`; one that
        // does runs both. Inert only if both subtrees are.
        Action::Fragment { first, second, .. } => is_inert(first) && is_inert(second),
    }
}

/// Rewrite one action tree to canonical form.
pub fn canonicalize(action: &Action) -> Action {
    let mut current = canon_step(action);
    // Each rewrite can expose another (e.g. collapsing a duplicate
    // branch creates a new dead-store pair), so iterate to a fixed
    // point. Every step strictly shrinks the tree or leaves it
    // unchanged, so this terminates quickly.
    loop {
        let next = canon_step(&current);
        if next == current {
            return current;
        }
        current = next;
    }
}

fn canon_step(action: &Action) -> Action {
    match action {
        Action::Send => Action::Send,
        Action::Drop => Action::Drop,
        Action::Duplicate(a, b) => {
            let a = canon_step(a);
            let b = canon_step(b);
            match (a, b) {
                (Action::Drop, b) => b,
                (a, Action::Drop) => a,
                (a, b) => Action::Duplicate(Box::new(a), Box::new(b)),
            }
        }
        Action::Tamper { field, mode, next } => {
            let next = canon_step(next);
            if is_inert(&next) {
                // The tampered packet is never emitted; the tamper has
                // no observable effect (corrupt PRNGs are per-site, so
                // no draw-order side channel survives either).
                return Action::Drop;
            }
            // Dead store: this tamper's write is fully shadowed by an
            // immediate replace of the same field.
            if let Action::Tamper {
                field: next_field,
                mode: TamperMode::Replace(_),
                ..
            } = &next
            {
                if next_field == field {
                    return next;
                }
            }
            let mode = match mode {
                TamperMode::Corrupt => TamperMode::Corrupt,
                TamperMode::Replace(value) => TamperMode::Replace(fold_value(field, value)),
            };
            Action::Tamper {
                field: field.clone(),
                mode,
                next: Box::new(next),
            }
        }
        Action::Fragment {
            proto,
            offset,
            in_order,
            first,
            second,
        } => {
            let first = canon_step(first);
            let second = canon_step(second);
            // The engine only splits TCP (segmentation) and IP
            // (fragmentation); for application protos it always runs
            // the first subtree on the untouched packet.
            if matches!(proto, Proto::Udp | Proto::Dns | Proto::Ftp) {
                return first;
            }
            if is_inert(&first) && is_inert(&second) {
                return Action::Drop;
            }
            Action::Fragment {
                proto: *proto,
                offset: *offset,
                in_order: *in_order,
                first: Box::new(first),
                second: Box::new(second),
            }
        }
    }
}

/// Fold a replace-value to the representation `FieldRef::set` stores.
///
/// Folds only where `set`'s own conversion proves equivalence:
/// * numeric kinds (`U8`/`U16`/`U32`, excluding `TCP:flags` which has
///   its own string parser) go through the same `numeric()` conversion
///   for every value variant, so everything folds to `Num`;
/// * option kinds treat `Empty` specially (strip the option) but
///   convert everything else through `numeric()`;
/// * byte kinds store `Str` and `Bytes` as raw bytes — empty collapses
///   to `Empty`, and valid-UTF-8 bytes fold to the shorter `Str` form;
/// * flag strings that `TcpFlags` can parse fold to its canonical
///   render order (`Str("AS")` ≡ `Str("SA")`).
pub(crate) fn fold_value(field: &FieldRef, value: &FieldValue) -> FieldValue {
    let kind = match field.kind() {
        Ok(kind) => kind,
        Err(_) => return value.clone(),
    };
    match kind {
        FieldKind::U8 | FieldKind::U16 | FieldKind::U32 => FieldValue::Num(numeric(value)),
        FieldKind::OptionNum => match value {
            FieldValue::Empty => FieldValue::Empty,
            other => FieldValue::Num(numeric(other)),
        },
        FieldKind::Flags => match value {
            FieldValue::Str(s) => match TcpFlags::from_geneva(s) {
                Some(flags) => FieldValue::Str(flags.to_geneva()),
                None => value.clone(),
            },
            other => other.clone(),
        },
        FieldKind::Bytes => match value {
            FieldValue::Str(s) if s.is_empty() => FieldValue::Empty,
            FieldValue::Bytes(b) if b.is_empty() => FieldValue::Empty,
            FieldValue::Bytes(b) => match std::str::from_utf8(b) {
                // `set` stores Str and Bytes identically; prefer the
                // readable form when it round-trips losslessly and
                // parses back as the same value (no '%', no digits-only
                // ambiguity with Num, printable ASCII only).
                Ok(s)
                    if !s.is_empty()
                        && s.bytes().all(|c| (0x20..0x7f).contains(&c) && c != b'%')
                        && s.parse::<u64>().is_err() =>
                {
                    FieldValue::Str(s.to_string())
                }
                _ => value.clone(),
            },
            other => other.clone(),
        },
    }
}

/// Mirror of `packet::field::numeric` (private there): the conversion
/// `FieldRef::set` applies to every numeric write.
fn numeric(value: &FieldValue) -> u64 {
    match value {
        FieldValue::Num(n) => *n,
        FieldValue::Str(s) => s.parse().unwrap_or(0),
        FieldValue::Bytes(b) => {
            let mut n = 0u64;
            for byte in b.iter().take(8) {
                n = (n << 8) | u64::from(*byte);
            }
            n
        }
        FieldValue::Empty => 0,
    }
}

/// Canonicalize every part of a strategy, and drop parts that can
/// never observably fire.
pub fn canonicalize_strategy(strategy: &Strategy) -> Strategy {
    Strategy {
        outbound: canonicalize_parts(&strategy.outbound),
        inbound: canonicalize_parts(&strategy.inbound),
    }
}

fn canonicalize_parts(parts: &[StrategyPart]) -> Vec<StrategyPart> {
    let mut out: Vec<StrategyPart> = Vec::with_capacity(parts.len());
    for part in parts {
        // First matching part wins in the engine: a later part with an
        // identical trigger is unreachable.
        let shadowed = out.iter().any(|prev| {
            prev.trigger.field == part.trigger.field && prev.trigger.value == part.trigger.value
        });
        if shadowed {
            continue;
        }
        out.push(StrategyPart {
            trigger: part.trigger.clone(),
            action: canonicalize(&part.action),
        });
    }
    // A trailing `send` part behaves exactly like the engine's
    // no-match fallthrough (emit the packet unchanged) — but only when
    // no later part could have matched the same packet, i.e. when it
    // is last. Repeat in case stripping one exposes another.
    while matches!(out.last(), Some(part) if part.action == Action::Send) {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;
    use geneva::parse_strategy;

    fn canon_text(text: &str) -> String {
        canonicalize_strategy(&parse_strategy(text).expect("parses")).to_string()
    }

    #[test]
    fn inert_subtrees_collapse_to_drop() {
        assert_eq!(
            canon_text("[TCP:flags:SA]-tamper{TCP:seq:corrupt}(drop,)-| \\/ "),
            "[TCP:flags:SA]-drop-| \\/ "
        );
        assert_eq!(
            canon_text("[TCP:flags:SA]-duplicate(drop,drop)-| \\/ "),
            "[TCP:flags:SA]-drop-| \\/ "
        );
        assert_eq!(
            canon_text("[TCP:flags:SA]-fragment{TCP:8:True}(drop,drop)-| \\/ "),
            "[TCP:flags:SA]-drop-| \\/ "
        );
    }

    #[test]
    fn duplicate_identities() {
        assert_eq!(
            canon_text("[TCP:flags:SA]-duplicate(drop,tamper{TCP:flags:replace:R})-| \\/ "),
            "[TCP:flags:SA]-tamper{TCP:flags:replace:R}-| \\/ "
        );
        assert_eq!(
            canon_text("[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},drop)-| \\/ "),
            "[TCP:flags:SA]-tamper{TCP:flags:replace:R}-| \\/ "
        );
    }

    #[test]
    fn nested_collapse_reaches_fixed_point() {
        // duplicate(duplicate(drop,drop), x) → duplicate(drop, x) → x
        assert_eq!(
            canon_text("[TCP:flags:SA]-duplicate(duplicate(drop,drop),)-| \\/ "),
            " \\/ "
        );
    }

    #[test]
    fn dead_store_elimination() {
        assert_eq!(
            canon_text("[TCP:flags:SA]-tamper{TCP:seq:corrupt}(tamper{TCP:seq:replace:5},)-| \\/ "),
            "[TCP:flags:SA]-tamper{TCP:seq:replace:5}-| \\/ "
        );
        // Different fields: both survive.
        assert_eq!(
            canon_text("[TCP:flags:SA]-tamper{TCP:ack:corrupt}(tamper{TCP:seq:replace:5},)-| \\/ "),
            "[TCP:flags:SA]-tamper{TCP:ack:corrupt}(tamper{TCP:seq:replace:5})-| \\/ "
        );
        // Corrupt does not shadow (it reads the packet state).
        assert_eq!(
            canon_text("[TCP:flags:SA]-tamper{TCP:seq:replace:5}(tamper{TCP:seq:corrupt},)-| \\/ "),
            "[TCP:flags:SA]-tamper{TCP:seq:replace:5}(tamper{TCP:seq:corrupt})-| \\/ "
        );
    }

    #[test]
    fn app_layer_fragment_degenerates_to_first() {
        assert_eq!(
            canon_text("[TCP:flags:SA]-fragment{UDP:8:True}(tamper{TCP:flags:replace:R},)-| \\/ "),
            "[TCP:flags:SA]-tamper{TCP:flags:replace:R}-| \\/ "
        );
    }

    #[test]
    fn tcp_fragment_with_live_branch_survives() {
        let text = "[TCP:flags:PA]-fragment{TCP:8:False}(drop,)-| \\/ ";
        assert_eq!(canon_text(text), text);
    }

    #[test]
    fn value_folding() {
        // Flag strings fold to canonical order.
        let a = canon_text("[TCP:flags:SA]-tamper{TCP:flags:replace:AS}-| \\/ ");
        let b = canon_text("[TCP:flags:SA]-tamper{TCP:flags:replace:SA}-| \\/ ");
        assert_eq!(a, b);
    }

    #[test]
    fn shadowed_parts_and_trailing_send_are_dropped() {
        assert_eq!(
            canon_text("[TCP:flags:SA]-drop-|[TCP:flags:SA]-duplicate(,)-| \\/ "),
            "[TCP:flags:SA]-drop-| \\/ "
        );
        assert_eq!(canon_text("[TCP:flags:SA]-send-| \\/ "), " \\/ ");
        // A send part that is NOT last must survive (it shields the
        // packet from later same-field parts... it can't — same field
        // exact-match — but it can shield from later different-field
        // parts).
        let text = "[TCP:flags:SA]-send-|[IP:ttl:64]-drop-| \\/ ";
        assert_eq!(canon_text(text), text);
    }

    #[test]
    fn canonical_key_identifies_equivalent_strategies() {
        let a = parse_strategy("[TCP:flags:SA]-duplicate(drop,tamper{TCP:seq:replace:7})-| \\/ ")
            .unwrap();
        let b = parse_strategy(
            "[TCP:flags:SA]-tamper{TCP:seq:corrupt}(tamper{TCP:seq:replace:7},)-| \\/ ",
        )
        .unwrap();
        let c = parse_strategy("[TCP:flags:SA]-tamper{TCP:seq:replace:8}-| \\/ ").unwrap();
        let key = |s| CanonKey::of(&canonicalize_strategy(s));
        assert_eq!(key(&a), key(&b));
        assert_ne!(key(&a), key(&c));
    }

    #[test]
    fn identity_is_fixed_point() {
        let strategies = [
            " \\/ ",
            "[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},tamper{TCP:flags:replace:S})-| \\/ ",
            "[TCP:flags:SA]-tamper{TCP:load:corrupt}(duplicate(duplicate,))-| \\/ ",
        ];
        for text in strategies {
            let parsed = parse_strategy(text).unwrap();
            let once = canonicalize_strategy(&parsed);
            let twice = canonicalize_strategy(&once);
            assert_eq!(once, twice, "not idempotent on {text}");
        }
    }
}
