//! Diagnostic types shared by all lint rules.

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth knowing; the strategy still does something.
    Warning,
    /// The strategy (or the flagged part of it) provably cannot work.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// Byte-range spans are the parser's: one per AST node, in preorder.
pub use geneva::Span;

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Stable machine-readable code, e.g. `"no-op-chain"`.
    pub code: &'static str,
    /// Byte range in the strategy source the finding points at.
    pub span: Span,
    /// Human-readable explanation.
    pub message: String,
    /// Optional replacement / fix hint.
    pub suggestion: Option<String>,
    /// True when this diagnostic alone proves the whole strategy can
    /// never outperform the identity strategy. Only meaningful with
    /// [`Severity::Error`].
    pub proves_futile: bool,
}

/// 1-based (line, column) of a byte offset in `source`. Columns count
/// bytes (the DSL is ASCII); offsets past the end land on the last
/// line, one past its end — the convention editors expect for EOF
/// diagnostics.
pub fn line_col(source: &str, offset: usize) -> (usize, usize) {
    let offset = offset.min(source.len());
    let before = &source.as_bytes()[..offset];
    let line = 1 + before.iter().filter(|&&b| b == b'\n').count();
    let col = 1 + before.iter().rev().take_while(|&&b| b != b'\n').count();
    (line, col)
}

impl Diagnostic {
    /// Render like `error[checksum-futile] at 12..30 (line 1, col 13):
    /// message`.
    pub fn render(&self, source: &str) -> String {
        let (line, col) = line_col(source, self.span.start);
        let mut out = format!(
            "{}[{}] at {} (line {line}, col {col}): {}",
            self.severity, self.code, self.span, self.message
        );
        if let Some(snippet) = source.get(self.span.start..self.span.end) {
            if !snippet.is_empty() {
                out.push_str(&format!("\n  --> `{snippet}`"));
            }
        }
        if let Some(s) = &self.suggestion {
            out.push_str(&format!("\n  suggestion: {s}"));
        }
        out
    }
}
