//! The product-construction model checker: a strategy's emission
//! summaries × a censor automaton → a per-censor [`Verdict`].
//!
//! All claims are scoped to the modeled topology the rest of the
//! workspace simulates: an *unmodified* client talking HTTP through
//! the censor to a strategic server, with the censor's shipped
//! default blacklist. Within that scope each verdict is a theorem
//! about the `crates/censor` models; the soundness tests check the
//! theorems against the implementations.
//!
//! Proof sketches (full argument in DESIGN.md §12):
//!
//! * **Inert, stateless censors (Airtel, Iran).** Both observe only
//!   client→server traffic and match per-packet on payload. The
//!   client is unmodified, so the only way a *server-side* strategy
//!   changes what the censor sees is by changing what the client's
//!   stack receives. If every outbound emission is either the
//!   identity packet or checksum-broken (dropped by the client's
//!   stack), and every inbound path is the identity (so the server
//!   also behaves as baseline), the client's wire behavior — in
//!   particular its forbidden request — is byte-identical to
//!   baseline, and the censor deterministically censors it.
//! * **Inert, Kazakhstan.** Same argument, but KZ also watches
//!   server→client packets and does not verify checksums, so
//!   checksum-broken extras are *not* invisible to it: outbound must
//!   be pure identity. Identity duplicates are safe: pre-request the
//!   modeled server emits only payload-free SYN+ACKs, which KZ's
//!   monitor passes without a state change.
//! * **Desynced, Kazakhstan only.** KZ's monitor runs until the
//!   client's first payload. The strategy's SYN+ACK-triggered
//!   emissions all cross the censor before that (the client cannot
//!   send its request before receiving the SYN+ACK), so we execute
//!   exactly those abstract packets through [`KzAbstractFlow`]; if
//!   the flow is provably `ignored` afterwards, the censor provably
//!   never acts on the flow.
//! * **GFW: always [`Verdict::Unknown`].** Its per-flow censorship
//!   probability (`baseline_miss`) and resync arming are sampled at
//!   flow creation — even the identity strategy evades a sampled
//!   fraction of flows, so neither inertness nor desync is provable.

use geneva::Strategy;
use packet::{Proto, TcpFlags};

use crate::absint::{summarize, PartSummary, PathEffect, StrategySummary};
use crate::censor_model::alphabet::{AbsDirection, AbsPacket};
use crate::censor_model::automata::{automaton, AbsState};
use crate::censor_model::{CensorId, Verdict};

/// Topology knowledge the checker shares with `lints::LintContext`:
/// enough to decide whether an emission's TTL survives to the censor.
#[derive(Debug, Clone)]
pub struct ModelCtx {
    /// Router hops from the strategic server to the middlebox.
    pub hops_to_middlebox: u8,
    /// TTL the engine's packets carry when no tamper touches it.
    pub default_ttl: u8,
}

impl Default for ModelCtx {
    fn default() -> Self {
        let path = netsim::PathConfig::default();
        ModelCtx {
            hops_to_middlebox: path.mb_to_server_hops,
            default_ttl: 64,
        }
    }
}

/// Check one strategy summary against one censor, default topology.
pub fn check(summary: &StrategySummary, id: CensorId) -> Verdict {
    check_with(summary, id, &ModelCtx::default())
}

/// Summarize and check a strategy against one censor.
pub fn check_strategy(strategy: &Strategy, id: CensorId) -> Verdict {
    check(&summarize(strategy), id)
}

/// Check one summary against every censor, in display order.
pub fn check_all(summary: &StrategySummary) -> Vec<(CensorId, Verdict)> {
    CensorId::all()
        .into_iter()
        .map(|id| (id, check(summary, id)))
        .collect()
}

/// Check one strategy summary against one censor.
pub fn check_with(summary: &StrategySummary, id: CensorId, ctx: &ModelCtx) -> Verdict {
    match id {
        CensorId::Gfw => Verdict::Unknown,
        CensorId::Airtel | CensorId::Iran => {
            if stateless_inert(summary) {
                Verdict::ProvablyInert
            } else {
                Verdict::Unknown
            }
        }
        CensorId::Kazakhstan => {
            if kz_desynced(summary, ctx) {
                Verdict::ProvablyDesynced
            } else if kz_inert(summary) {
                Verdict::ProvablyInert
            } else {
                Verdict::Unknown
            }
        }
    }
}

/// The path is byte-for-byte the packet that triggered it.
fn is_identity(path: &PathEffect) -> bool {
    path.fields.is_empty() && !path.via_fragment && !path.checksum_broken()
}

/// Every inbound path is the identity (parts that drop everything are
/// fine for inertness: losing packets can only lose the exchange, not
/// conjure forbidden content to the client). Tampered inbound packets
/// void all claims — rewriting an arriving handshake segment can forge
/// a request *at the server* that the censor never saw.
fn inbound_all_identity(summary: &StrategySummary) -> bool {
    summary
        .inbound
        .iter()
        .all(|part| part.paths.iter().all(is_identity))
}

/// Inertness against the stateless to-server-only censors.
fn stateless_inert(summary: &StrategySummary) -> bool {
    summary.outbound.iter().all(|part| {
        part.paths
            .iter()
            .all(|p| is_identity(p) || p.checksum_broken())
    }) && inbound_all_identity(summary)
}

/// Inertness against Kazakhstan: outbound pure identity (KZ ignores
/// checksums, so broken extras still drive its monitor), inbound
/// identity.
fn kz_inert(summary: &StrategySummary) -> bool {
    summary
        .outbound
        .iter()
        .all(|part| part.paths.iter().all(is_identity))
        && inbound_all_identity(summary)
}

/// The part's trigger, parsed as exact TCP flags.
fn trigger_flags(part: &PartSummary) -> Option<TcpFlags> {
    (part.trigger.field.proto == Proto::Tcp && part.trigger.field.name == "flags")
        .then(|| TcpFlags::from_geneva(&part.trigger.value))
        .flatten()
}

/// Kazakhstan desync proof: find the (first-match-wins) part that
/// fires on the server's SYN+ACK, prove every earlier part provably
/// disjoint from it, and product-execute its emissions through the KZ
/// automaton from the initial state.
fn kz_desynced(summary: &StrategySummary, ctx: &ModelCtx) -> bool {
    // The handshake must run as baseline on the way in: the client's
    // SYN has to reach the server stack unmodified so the SYN+ACK is
    // emitted at all, and no inbound rewrite may forge server-visible
    // data. Identity-only, and no part may silently drop.
    let inbound_sound = summary
        .inbound
        .iter()
        .all(|part| !part.paths.is_empty() && part.paths.iter().all(is_identity));
    if !inbound_sound {
        return false;
    }
    let kz = automaton(CensorId::Kazakhstan);
    for part in &summary.outbound {
        let flags = trigger_flags(part);
        if flags != Some(TcpFlags::SYN_ACK) {
            // An earlier part shields the SYN+ACK part unless it
            // provably cannot match a SYN+ACK: an exact-match trigger
            // on the same flags field with a different known value.
            if flags.is_some() {
                continue;
            }
            return false;
        }
        // This part fires on the server's SYN+ACK — the first
        // server→client packet of the flow, so its emissions all
        // cross the censor before the client can send data.
        let mut state = kz.initial();
        for path in &part.paths {
            let pkt = AbsPacket::of_effect(path, &part.trigger, AbsDirection::ToClient, ctx);
            kz.step(&mut state, &pkt);
        }
        let AbsState::Kz(flow) = state else {
            return false;
        };
        return flow.must_ignored();
    }
    false
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code
    use super::*;
    use geneva::parse_strategy;

    fn verdicts(source: &str) -> Vec<(CensorId, Verdict)> {
        let strategy = parse_strategy(source).unwrap();
        check_all(&summarize(&strategy))
    }

    fn verdict(source: &str, id: CensorId) -> Verdict {
        check_strategy(&parse_strategy(source).unwrap(), id)
    }

    #[test]
    fn gfw_is_always_unknown() {
        // Stochastic per-flow censorship: even the identity strategy
        // evades a sampled fraction, so no claim is ever sound.
        for source in ["\\/", "[TCP:flags:SA]-duplicate(,)-| \\/"] {
            assert_eq!(verdict(source, CensorId::Gfw), Verdict::Unknown, "{source}");
        }
    }

    #[test]
    fn identity_is_inert_against_deterministic_censors() {
        for id in [CensorId::Airtel, CensorId::Iran, CensorId::Kazakhstan] {
            assert_eq!(verdict("\\/", id), Verdict::ProvablyInert, "{id}");
        }
    }

    #[test]
    fn identity_duplicates_are_inert() {
        let source = "[TCP:flags:SA]-duplicate(,)-| \\/";
        for id in [CensorId::Airtel, CensorId::Iran, CensorId::Kazakhstan] {
            assert_eq!(verdict(source, id), Verdict::ProvablyInert, "{id}");
        }
    }

    #[test]
    fn broken_checksum_extras_are_inert_only_where_checksums_gate_delivery() {
        // The RST copy never reaches the client stack (bad checksum)
        // and Airtel/Iran never watch server→client traffic; KZ does,
        // and processes the RST copy, so no KZ claim.
        let source =
            "[TCP:flags:A]-duplicate(,tamper{TCP:flags:replace:R}(tamper{TCP:chksum:corrupt},))-| \\/";
        assert_eq!(verdict(source, CensorId::Airtel), Verdict::ProvablyInert);
        assert_eq!(verdict(source, CensorId::Iran), Verdict::ProvablyInert);
        assert_eq!(verdict(source, CensorId::Kazakhstan), Verdict::Unknown);
    }

    #[test]
    fn window_tampering_is_never_inert() {
        // Strategy 8 changes what the client *receives*, which changes
        // how the unmodified client segments its request — it really
        // does evade Iran/Airtel/KZ, and the checker must not claim
        // otherwise.
        let source = "[TCP:flags:SA]-tamper{TCP:window:replace:10}(tamper{TCP:options-wscale:replace:},)-| \\/";
        for id in [CensorId::Airtel, CensorId::Iran, CensorId::Kazakhstan] {
            assert_eq!(verdict(source, id), Verdict::Unknown, "{id}");
        }
    }

    #[test]
    fn null_flags_provably_desyncs_kazakhstan() {
        // Strategy 11: the empty flags value is written as no flags at
        // all; KZ's monitor writes the flow off on sight.
        let source = "[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:},)-| \\/";
        assert_eq!(
            verdict(source, CensorId::Kazakhstan),
            Verdict::ProvablyDesynced
        );
        // ...but says nothing about the stateless censors.
        assert_eq!(verdict(source, CensorId::Airtel), Verdict::Unknown);
    }

    #[test]
    fn triple_and_quadruple_load_provably_desync_kazakhstan() {
        for source in [
            "[TCP:flags:SA]-tamper{TCP:load:corrupt}(duplicate(duplicate,),)-| \\/",
            "[TCP:flags:SA]-tamper{TCP:load:corrupt}(duplicate(duplicate,duplicate),)-| \\/",
        ] {
            assert_eq!(
                verdict(source, CensorId::Kazakhstan),
                Verdict::ProvablyDesynced,
                "{source}"
            );
        }
    }

    #[test]
    fn double_get_provably_desyncs_kazakhstan() {
        let source = "[TCP:flags:SA]-tamper{TCP:load:replace:GET / HTTP1.}(duplicate,)-| \\/";
        assert_eq!(
            verdict(source, CensorId::Kazakhstan),
            Verdict::ProvablyDesynced
        );
    }

    #[test]
    fn forbidden_double_get_withholds_the_desync_claim() {
        // The second forbidden GET draws an injected probe response:
        // the flow ends up ignored, but the censor *acted*, so the
        // clean desync claim (zero censor events) is withheld.
        let source =
            "[TCP:flags:SA]-tamper{TCP:load:replace:GET http://youtube.com/ HTTP1.}(duplicate,)-| \\/";
        assert_eq!(verdict(source, CensorId::Kazakhstan), Verdict::Unknown);
    }

    #[test]
    fn double_load_is_not_enough_to_desync() {
        // Two payload-bearing handshake packets are tolerated — that's
        // the paper's control for Strategy 9.
        let source = "[TCP:flags:SA]-tamper{TCP:load:corrupt}(duplicate,)-| \\/";
        assert_eq!(verdict(source, CensorId::Kazakhstan), Verdict::Unknown);
    }

    #[test]
    fn ttl_limited_emissions_cannot_prove_desync() {
        // Null-flags copy that dies before the middlebox: the censor
        // provably never sees it, so no desync claim — and the strategy
        // is not inert either (a tampered copy exists).
        let source =
            "[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:}(tamper{IP:ttl:replace:1},),)-| \\/";
        assert_eq!(verdict(source, CensorId::Kazakhstan), Verdict::Unknown);
    }

    #[test]
    fn shielding_part_blocks_the_desync_proof() {
        // An earlier part whose trigger is not provably disjoint from
        // the SYN+ACK could intercept it; first-match-wins means the
        // desync emissions might never happen. (A same-trigger shield
        // is folded away by canonicalization, so use a different
        // field's trigger, whose overlap is unknown.)
        let source = "[TCP:window:8192]-tamper{TCP:seq:corrupt}-| [TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:},)-| \\/";
        assert_eq!(verdict(source, CensorId::Kazakhstan), Verdict::Unknown);
        // A provably-disjoint earlier trigger does not shield.
        let disjoint =
            "[TCP:flags:A]-duplicate(,)-| [TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:},)-| \\/";
        assert_eq!(
            verdict(disjoint, CensorId::Kazakhstan),
            Verdict::ProvablyDesynced
        );
    }

    #[test]
    fn inbound_tampering_voids_all_claims() {
        // Rewriting arriving packets can forge server-visible data the
        // censor never saw; nothing is provable then.
        let source = "\\/ [TCP:flags:A]-tamper{TCP:load:corrupt}-|";
        for id in [CensorId::Airtel, CensorId::Iran, CensorId::Kazakhstan] {
            assert_eq!(verdict(source, id), Verdict::Unknown, "{id}");
        }
    }

    #[test]
    fn library_matrix_matches_the_papers_deployment() {
        // The paper's §5 per-censor results, statically: the GFW
        // column is all unknown (stochastic), strategies 9–11 and
        // their variants provably desync Kazakhstan, and nothing
        // working is claimed inert anywhere.
        let mut desynced = Vec::new();
        for named in geneva::library::server_side()
            .iter()
            .chain(geneva::library::variants().iter())
        {
            for (id, v) in verdicts(named.text) {
                match id {
                    CensorId::Gfw => assert_eq!(v, Verdict::Unknown, "{}", named.name),
                    // Every library strategy beats at least one censor
                    // in the paper; none may be proven inert against
                    // one it beats. The only inert-eligible rows are
                    // the GFW-only checksum-insertion teardowns, which
                    // are invisible to the stateless censors.
                    _ => {
                        if v == Verdict::ProvablyDesynced {
                            assert_eq!(id, CensorId::Kazakhstan, "{}", named.name);
                            desynced.push(named.name);
                        }
                    }
                }
            }
        }
        for expected in ["Triple Load", "Double GET", "Null Flags", "Quadruple Load"] {
            assert!(
                desynced.contains(&expected),
                "{expected} not proven desynced"
            );
        }
    }

    #[test]
    fn chksum_fixed_compat_variants_still_desync_kazakhstan() {
        // The client-compat fixes hide the injected loads from the
        // client behind broken checksums; KZ ignores checksums, so
        // the desync proof must survive the fix.
        for id in [9, 10] {
            let named = geneva::library::client_compat_fix(id).unwrap();
            assert_eq!(
                check_strategy(&named.strategy(), CensorId::Kazakhstan),
                Verdict::ProvablyDesynced,
                "{}",
                named.name
            );
        }
    }
}
