//! The abstract packet alphabet the censor automata read.
//!
//! An [`AbsPacket`] is one emitted packet as the *censor* can see it:
//! direction, TCP flags, payload visibility (non-empty? a well-formed
//! GET? forbidden?), checksum validity, whether the packet's TTL
//! provably survives to the middlebox, and whether its seq/ack still
//! agree with the tracked stream. Facts the static summary cannot pin
//! down are three-valued ([`Tri::Maybe`]), so the automata can keep
//! separate must/may state and every proof stays an
//! over-approximation of the concrete censor.
//!
//! Two constructors bridge the two worlds the soundness proptest
//! compares: [`AbsPacket::of_effect`] abstracts a static
//! [`PathEffect`] (what the checker consumes), and
//! [`AbsPacket::of_packet`] abstracts a concrete wire packet (what the
//! differential test feeds both the real `Middlebox` and the
//! automaton).

use geneva::Trigger;
use packet::field::FieldValue;
use packet::{Packet, Proto, TcpFlags};

use crate::absint::{FieldEffect, PathEffect};
use crate::censor_model::check::ModelCtx;

/// Three-valued fact: definitely false, unknown, definitely true.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tri {
    No,
    Maybe,
    Yes,
}

impl Tri {
    /// Exact fact from a concrete boolean.
    pub fn of(b: bool) -> Tri {
        if b {
            Tri::Yes
        } else {
            Tri::No
        }
    }
    /// Provably true.
    pub fn must(self) -> bool {
        self == Tri::Yes
    }
    /// Possibly true (not provably false).
    pub fn may(self) -> bool {
        self != Tri::No
    }
    /// Least upper bound: `Yes` absorbs, disagreement blurs to
    /// `Maybe`.
    pub fn join(self, other: Tri) -> Tri {
        self.max(other)
    }
}

/// Which way the packet crosses the censor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsDirection {
    ToClient,
    ToServer,
}

/// Keyword markers the modeled censors' default blacklists match on
/// (`crates/censor`: KZ/Airtel/Iran ship `youtube.com`, the GFW's HTTP
/// box ships `ultrasurf`). A payload that contains none of these
/// substrings is provably not forbidden to the default-configured
/// models; a payload that does contain one *may* be (the concrete
/// check also requires HTTP request structure).
pub const FORBIDDEN_MARKERS: &[&str] = &["youtube.com", "ultrasurf"];

/// Replica of the Kazakh censor's well-formed-GET predicate
/// (`GET <path> HTTP1.` / `GET <path> HTTP/1.` prefix). Kept
/// byte-for-byte in sync with `censor::kazakhstan`; the soundness
/// proptest feeds both sides the same payloads, so drift fails tests.
pub fn wellformed_get_prefix(payload: &[u8]) -> bool {
    let Ok(text) = std::str::from_utf8(payload) else {
        return false;
    };
    let Some(rest) = text.strip_prefix("GET ") else {
        return false;
    };
    let Some((path, rest)) = rest.split_once(' ') else {
        return false;
    };
    !path.is_empty() && (rest.starts_with("HTTP1.") || rest.starts_with("HTTP/1."))
}

fn contains_marker(bytes: &[u8]) -> bool {
    FORBIDDEN_MARKERS
        .iter()
        .any(|m| bytes.windows(m.len()).any(|w| w == m.as_bytes()))
}

/// One packet, as abstracted for the censor automata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsPacket {
    pub dir: AbsDirection,
    /// Emitted TCP flags when statically known, `None` otherwise.
    pub flags: Option<TcpFlags>,
    /// Payload is non-empty.
    pub payload: Tri,
    /// Payload satisfies [`wellformed_get_prefix`].
    pub wellformed_get: Tri,
    /// Payload trips the censor's (default) blacklist.
    pub forbidden: Tri,
    /// Transport checksum is valid on the wire.
    pub checksum_ok: Tri,
    /// TTL survives from the emitting server to the middlebox.
    pub reaches: Tri,
    /// seq/ack still agree with the stream the censor tracks.
    pub seq_tracked: Tri,
}

impl AbsPacket {
    /// Abstract one static emission path. `trigger` is the part's
    /// trigger: untouched fields inherit facts from the matched
    /// packet, and a SYN-bearing flags trigger additionally proves the
    /// matched packet payload-free (the modeled endpoint stacks never
    /// put data on SYN or SYN+ACK segments).
    pub fn of_effect(
        effect: &PathEffect,
        trigger: &Trigger,
        dir: AbsDirection,
        ctx: &ModelCtx,
    ) -> AbsPacket {
        if effect.via_fragment {
            // A fragment path's field facts describe a superset of
            // dynamic behaviours (the split may or may not happen and
            // shifts the second piece's seq): keep only the direction.
            return AbsPacket {
                dir,
                flags: None,
                payload: Tri::Maybe,
                wellformed_get: Tri::Maybe,
                forbidden: Tri::Maybe,
                checksum_ok: Tri::Maybe,
                reaches: Tri::Maybe,
                seq_tracked: Tri::Maybe,
            };
        }
        let trigger_flags = (trigger.field.proto == Proto::Tcp && trigger.field.name == "flags")
            .then(|| TcpFlags::from_geneva(&trigger.value))
            .flatten();
        let flags = match effect.effect("TCP:flags") {
            None => effect.emitted_flags(trigger),
            // The engine writes an empty flags value as no flags at
            // all (`packet::field`): `tamper{TCP:flags:replace:}` is
            // the paper's null-flags strategy, not an unknown.
            Some(FieldEffect::Written(FieldValue::Empty)) => Some(TcpFlags::NONE),
            Some(FieldEffect::Written(FieldValue::Str(s))) => TcpFlags::from_geneva(s),
            // Numeric writes truncate to the 8 usable flag bits, like
            // the engine does.
            #[allow(clippy::cast_possible_truncation)]
            Some(FieldEffect::Written(FieldValue::Num(n))) => Some(TcpFlags(*n as u8)),
            Some(_) => None,
        };
        let (payload, wellformed_get, forbidden) = match effect.effect("TCP:load") {
            // Untouched: the trigger packet's own payload. SYN-bearing
            // triggers match handshake segments, which the modeled
            // stacks keep payload-free; anything else is unknown.
            None => {
                if trigger_flags.is_some_and(|f| f.contains(TcpFlags::SYN)) {
                    (Tri::No, Tri::No, Tri::No)
                } else {
                    (Tri::Maybe, Tri::Maybe, Tri::Maybe)
                }
            }
            Some(FieldEffect::Written(FieldValue::Empty)) => (Tri::No, Tri::No, Tri::No),
            Some(FieldEffect::Written(FieldValue::Str(s))) => abstract_payload(s.as_bytes()),
            Some(FieldEffect::Written(FieldValue::Bytes(b))) => abstract_payload(b),
            // Decimal digits: non-empty, never a GET, never a keyword.
            Some(FieldEffect::Written(FieldValue::Num(_))) => (Tri::Yes, Tri::No, Tri::No),
            // Corruption yields random bytes and *keeps payloads
            // non-empty* (an empty payload is corrupted into 8–12
            // random bytes — `geneva::engine::corrupt_value`). Random
            // bytes forming a well-formed GET or a ≥8-byte blacklist
            // keyword is below the model's resolution (< 2^-60 per
            // trial); the automata treat both as provably-not.
            Some(FieldEffect::Corrupted) => (Tri::Yes, Tri::No, Tri::No),
        };
        let checksum_ok = Tri::of(!effect.checksum_broken());
        let reaches = match effect.ttl(ctx.default_ttl) {
            Some(t) if t >= u64::from(ctx.hops_to_middlebox) => Tri::Yes,
            Some(_) => Tri::No,
            None => Tri::Maybe,
        };
        let seq_tracked =
            if effect.effect("TCP:seq").is_none() && effect.effect("TCP:ack").is_none() {
                Tri::Yes
            } else {
                Tri::Maybe
            };
        AbsPacket {
            dir,
            flags,
            payload,
            wellformed_get,
            forbidden,
            checksum_ok,
            reaches,
            seq_tracked,
        }
    }

    /// Abstract a concrete wire packet with exact facts (the
    /// differential-test side). `forbidden` stays `Maybe` when a
    /// blacklist marker is present because the concrete predicate also
    /// demands request structure; absence of every marker is exact.
    pub fn of_packet(pkt: &Packet, dir: AbsDirection) -> AbsPacket {
        let flags = pkt.tcp_header().map(|tcp| tcp.flags);
        let payload = Tri::of(!pkt.payload.is_empty());
        let wellformed_get = Tri::of(wellformed_get_prefix(&pkt.payload));
        let forbidden = if contains_marker(&pkt.payload) {
            Tri::Maybe
        } else {
            Tri::No
        };
        AbsPacket {
            dir,
            flags,
            payload,
            wellformed_get,
            forbidden,
            checksum_ok: Tri::Maybe,
            reaches: Tri::Yes,
            seq_tracked: Tri::Maybe,
        }
    }
}

/// (non-empty?, well-formed GET?, forbidden?) of a statically known
/// payload.
fn abstract_payload(bytes: &[u8]) -> (Tri, Tri, Tri) {
    let forbidden = if contains_marker(bytes) {
        Tri::Maybe
    } else {
        Tri::No
    };
    (
        Tri::of(!bytes.is_empty()),
        Tri::of(wellformed_get_prefix(bytes)),
        forbidden,
    )
}
