//! Per-censor model checking for server-side strategies.
//!
//! `absint::summarize` reduces a strategy to, per trigger, the set of
//! abstract packets it can emit ([`crate::absint::PathEffect`]s). This
//! module closes the loop with the *censor* side: each of the paper's
//! four censors is written down as a declarative abstract automaton
//! ([`automata::CensorAutomaton`]) over an abstract packet alphabet
//! ([`alphabet::AbsPacket`]), and a product-construction checker
//! ([`check::check`]) symbolically executes the strategy's emission
//! summaries against each automaton.
//!
//! The result is a three-valued per-censor verdict:
//!
//! * [`Verdict::ProvablyInert`] — the censor's view of the flow, and
//!   the unmodified client's behavior, are provably indistinguishable
//!   from the identity strategy, so the strategy cannot evade this
//!   censor. `evolve`'s fitness cache uses this to skip simulation.
//! * [`Verdict::ProvablyDesynced`] — on every abstract path the censor
//!   provably loses stream tracking (writes the flow off) before the
//!   client's request crosses it, so the censor takes no action against
//!   the flow at all.
//! * [`Verdict::Unknown`] — neither proof goes through. This is the
//!   honest answer for every strategy against the GFW, whose per-flow
//!   censorship probability and resynchronization arming are sampled
//!   stochastically: no deterministic claim survives.
//!
//! Soundness is guarded twice: `strata/tests/censor_model_sim.rs`
//! replays random concrete packet traces through the real `Middlebox`
//! models and the abstract automata and asserts simulation, and
//! `evolve/tests/soundness.rs` checks 520 random genomes' verdicts
//! against actual trial outcomes. See DESIGN.md §12 for the alphabet,
//! the product construction, and the soundness argument.

pub mod alphabet;
pub mod automata;
pub mod check;

pub use alphabet::{AbsDirection, AbsPacket, Tri};
pub use automata::{automaton, AbsState, CensorAutomaton, KzAbstractFlow};
pub use check::{check, check_all, check_strategy, check_with, ModelCtx};

/// The four modeled censors, named independently of `crates/censor`
/// (which depends on nothing in `strata`; the automata here are
/// hand-derived from its models, not linked against them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CensorId {
    /// China's Great Firewall (the §6 multi-box model).
    Gfw,
    /// India's Airtel middlebox (§5.2): stateless on-path injector.
    Airtel,
    /// Iran's protocol filter (§5.1): stateless on-path blackholer.
    Iran,
    /// Kazakhstan's in-path HTTP MITM (§5.3).
    Kazakhstan,
}

impl CensorId {
    /// Every modeled censor, in display order.
    pub fn all() -> [CensorId; 4] {
        [
            CensorId::Gfw,
            CensorId::Airtel,
            CensorId::Iran,
            CensorId::Kazakhstan,
        ]
    }

    /// Display name (matrix column header).
    pub fn name(self) -> &'static str {
        match self {
            CensorId::Gfw => "GFW",
            CensorId::Airtel => "Airtel",
            CensorId::Iran => "Iran",
            CensorId::Kazakhstan => "Kazakhstan",
        }
    }

    /// Parse a CLI spelling: censor name or the country it censors
    /// for, case-insensitive.
    pub fn parse(s: &str) -> Option<CensorId> {
        match s.to_ascii_lowercase().as_str() {
            "gfw" | "china" => Some(CensorId::Gfw),
            "airtel" | "india" => Some(CensorId::Airtel),
            "iran" => Some(CensorId::Iran),
            "kazakhstan" | "kz" => Some(CensorId::Kazakhstan),
            _ => None,
        }
    }
}

impl std::fmt::Display for CensorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Three-valued per-censor verdict. Only the two `Provably*` arms
/// carry claims; `Unknown` is the safe default and the only verdict
/// ever returned for the stochastic GFW.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The censor's behavior against this flow provably equals its
    /// behavior against the identity strategy: no evasion possible.
    ProvablyInert,
    /// The censor provably writes the flow off before the client's
    /// request reaches it: no censorship event possible.
    ProvablyDesynced,
    /// No proof either way; the strategy must be simulated.
    Unknown,
}

impl Verdict {
    /// Short lowercase token (matrix cells, JSON values).
    pub fn token(self) -> &'static str {
        match self {
            Verdict::ProvablyInert => "inert",
            Verdict::ProvablyDesynced => "desynced",
            Verdict::Unknown => "unknown",
        }
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}
