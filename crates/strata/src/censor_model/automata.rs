//! Hand-written abstract automata for the four modeled censors.
//!
//! Each [`CensorAutomaton`] is a declarative record of what
//! `crates/censor` implements: the censor's abstract states, which
//! directions it observes, how it resynchronizes or tears down
//! tracking state, and which packets it injects on a censorship
//! event. The structural facts double as the stand-down oracle for
//! `lints` (a lint that injects RSTs expecting resync consults
//! `resyncs_on_server_rst` instead of a hard-coded censor list).
//!
//! The dynamic part — [`CensorAutomaton::step`] over [`AbsState`] —
//! is the abstract transfer function the product checker and the
//! soundness proptest share. GFW state is deliberately opaque
//! (`stochastic`: its per-flow censorship probability and resync
//! arming are sampled at flow creation, so no deterministic abstract
//! state simulates it). Airtel and Iran are stateless. Kazakhstan's
//! normal-HTTP pattern monitor is tracked precisely as an interval
//! abstraction ([`KzAbstractFlow`]) of the concrete
//! `censor::kazakhstan::KzFlow` counters.

use packet::TcpFlags;

use crate::censor_model::alphabet::{AbsDirection, AbsPacket, Tri};
use crate::censor_model::CensorId;

/// Declarative abstract-automaton record for one censor.
#[derive(Debug, Clone)]
pub struct CensorAutomaton {
    pub id: CensorId,
    /// Human-readable state names, initial state first (documentation
    /// and report rendering; the executable states live in
    /// [`AbsState`]).
    pub states: &'static [&'static str],
    /// Per-flow behavior is sampled from an RNG at flow creation
    /// (GFW's `baseline_miss` / resync arming): every deterministic
    /// claim is off the table.
    pub stochastic: bool,
    /// Keeps per-flow TCB/monitor state at all.
    pub tracks_streams: bool,
    /// Reassembles segments before matching (none of the modeled
    /// censors do on the paths we model; Strategy 8 exploits this).
    pub reassembles: bool,
    pub observes_to_client: bool,
    pub observes_to_server: bool,
    /// Validates transport checksums before processing (none of the
    /// modeled censors do — broken-checksum insertion works — but a
    /// future censor that does would flip this).
    pub verifies_checksums: bool,
    /// Does a *server-sent* RST tear down / resynchronize tracking
    /// state? `Some(false)` for every modeled censor: the GFW's
    /// revised §5 model never deterministically resyncs on server
    /// RSTs, and the other three keep no stream state a RST could
    /// clear. `None` would mean "unknown censor".
    pub resyncs_on_server_rst: Option<bool>,
    /// Injection actions on a censorship event.
    pub injects_rst_to_client: bool,
    pub injects_rst_to_server: bool,
    pub injects_block_page: bool,
}

/// Executable abstract state for one flow through one automaton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbsState {
    /// Nothing is tracked (stochastic censor): every query answers
    /// "maybe".
    Opaque,
    /// Stateless censor: the automaton is a single state.
    Stateless,
    /// Kazakhstan's handshake pattern monitor.
    Kz(KzAbstractFlow),
}

/// Interval abstraction of `censor::kazakhstan::KzFlow`: counter
/// ranges plus three-valued flags. Must-transitions (min counters,
/// `Tri::Yes`) fire only on facts every concretization shares;
/// may-transitions (max counters, `Tri::Maybe`) fire on any possible
/// concretization, so the abstract flow always simulates the concrete
/// one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KzAbstractFlow {
    /// Payload-bearing server→client handshake packets seen.
    pub payloads_min: u32,
    pub payloads_max: u32,
    /// Well-formed server→client GETs seen.
    pub gets_min: u32,
    pub gets_max: u32,
    /// The censor has written the flow off as not-normal-HTTP.
    pub ignored: Tri,
    /// The client has sent payload (handshake monitoring over).
    pub client_data: Tri,
    /// A possibly-forbidden possibly-GET crossed during the handshake
    /// window: the censor *may* answer the second GET with an injected
    /// probe response, so "desynced ⇒ zero censor actions" no longer
    /// holds. Claims are withheld when set.
    pub tainted: bool,
}

impl KzAbstractFlow {
    pub fn new() -> KzAbstractFlow {
        KzAbstractFlow {
            payloads_min: 0,
            payloads_max: 0,
            gets_min: 0,
            gets_max: 0,
            ignored: Tri::No,
            client_data: Tri::No,
            tainted: false,
        }
    }

    /// The censor has provably written the flow off (and provably took
    /// no injection/drop action while getting there).
    pub fn must_ignored(&self) -> bool {
        self.ignored.must() && !self.tainted
    }

    /// The censor may have written the flow off.
    pub fn may_ignored(&self) -> bool {
        self.ignored.may()
    }
}

impl Default for KzAbstractFlow {
    fn default() -> Self {
        KzAbstractFlow::new()
    }
}

static GFW: CensorAutomaton = CensorAutomaton {
    id: CensorId::Gfw,
    states: &[
        "no-tcb",
        "synchronized",
        "desynced",
        "resync-armed",
        "residual",
    ],
    stochastic: true,
    tracks_streams: true,
    reassembles: false,
    observes_to_client: true,
    observes_to_server: true,
    verifies_checksums: false,
    resyncs_on_server_rst: Some(false),
    injects_rst_to_client: true,
    injects_rst_to_server: true,
    injects_block_page: false,
};

static AIRTEL: CensorAutomaton = CensorAutomaton {
    id: CensorId::Airtel,
    states: &["stateless"],
    stochastic: false,
    tracks_streams: false,
    reassembles: false,
    observes_to_client: false,
    observes_to_server: true,
    verifies_checksums: false,
    resyncs_on_server_rst: Some(false),
    injects_rst_to_client: true,
    injects_rst_to_server: false,
    injects_block_page: true,
};

static IRAN: CensorAutomaton = CensorAutomaton {
    id: CensorId::Iran,
    states: &["stateless", "blackholing"],
    stochastic: false,
    tracks_streams: false,
    reassembles: false,
    observes_to_client: false,
    observes_to_server: true,
    verifies_checksums: false,
    resyncs_on_server_rst: Some(false),
    injects_rst_to_client: false,
    injects_rst_to_server: false,
    injects_block_page: false,
};

static KAZAKHSTAN: CensorAutomaton = CensorAutomaton {
    id: CensorId::Kazakhstan,
    states: &["handshake", "ignored", "established", "intercepting"],
    stochastic: false,
    tracks_streams: true,
    reassembles: false,
    observes_to_client: true,
    observes_to_server: true,
    verifies_checksums: false,
    resyncs_on_server_rst: Some(false),
    injects_rst_to_client: false,
    injects_rst_to_server: false,
    injects_block_page: true,
};

/// The automaton for one censor.
pub fn automaton(id: CensorId) -> &'static CensorAutomaton {
    match id {
        CensorId::Gfw => &GFW,
        CensorId::Airtel => &AIRTEL,
        CensorId::Iran => &IRAN,
        CensorId::Kazakhstan => &KAZAKHSTAN,
    }
}

/// Flag bits whose *absence* makes Kazakhstan's monitor write a
/// handshake packet off as not-normal (Strategy 11's null flags).
const KZ_NORMAL_FLAGS: TcpFlags = TcpFlags(0x17); // FIN | RST | SYN | ACK

impl CensorAutomaton {
    /// Fresh abstract state for one flow.
    pub fn initial(&self) -> AbsState {
        match self.id {
            CensorId::Gfw => AbsState::Opaque,
            CensorId::Airtel | CensorId::Iran => AbsState::Stateless,
            CensorId::Kazakhstan => AbsState::Kz(KzAbstractFlow::new()),
        }
    }

    /// Abstract transfer function: fold one packet into the flow
    /// state. Must preserve simulation: for any concrete trace, the
    /// abstract state reached by stepping the trace's abstractions
    /// over-approximates the concrete censor's flow state (the
    /// `censor_model_sim` proptest enforces this against the real
    /// `Middlebox` models).
    pub fn step(&self, state: &mut AbsState, pkt: &AbsPacket) {
        if let AbsState::Kz(flow) = state {
            step_kz(flow, pkt);
        }
        // Opaque and Stateless states have nothing to update.
    }
}

/// Abstract mirror of `censor::kazakhstan`'s per-packet processing.
fn step_kz(flow: &mut KzAbstractFlow, pkt: &AbsPacket) {
    // A packet that provably dies before the middlebox is invisible;
    // one that only *may* reach contributes to may-facts only.
    if !pkt.reaches.may() {
        return;
    }
    let reaches_must = pkt.reaches.must();
    match pkt.dir {
        AbsDirection::ToServer => {
            if pkt.payload.may() {
                let seen = if reaches_must && pkt.payload.must() {
                    Tri::Yes
                } else {
                    Tri::Maybe
                };
                flow.client_data = flow.client_data.join(seen);
            }
        }
        AbsDirection::ToClient => {
            // Concrete guard: `!client_data_seen && !ignored`.
            let monitored_must =
                reaches_must && flow.client_data == Tri::No && flow.ignored == Tri::No;
            let monitored_may = flow.client_data != Tri::Yes && flow.ignored != Tri::Yes;
            if !monitored_may {
                return;
            }
            // Null/esoteric flags: the monitor gives up immediately
            // (and, concretely, skips the payload checks below).
            match pkt.flags {
                Some(f) if !f.intersects(KZ_NORMAL_FLAGS) => {
                    if monitored_must {
                        flow.ignored = Tri::Yes;
                        return;
                    }
                    flow.ignored = flow.ignored.join(Tri::Maybe);
                }
                Some(_) => {}
                None => flow.ignored = flow.ignored.join(Tri::Maybe),
            }
            // Payload-bearing handshake packets. Must-counting needs
            // known non-null flags (else the concrete branch above
            // returned without counting).
            let flags_normal = pkt.flags.is_some_and(|f| f.intersects(KZ_NORMAL_FLAGS));
            if pkt.payload.may() {
                flow.payloads_max += 1;
                if flow.payloads_max >= 3 {
                    flow.ignored = flow.ignored.join(Tri::Maybe);
                }
                if monitored_must && flags_normal && pkt.payload.must() {
                    flow.payloads_min += 1;
                    if flow.payloads_min >= 3 {
                        flow.ignored = Tri::Yes;
                    }
                }
            }
            if pkt.wellformed_get.may() {
                flow.gets_max += 1;
                if flow.gets_max >= 2 {
                    flow.ignored = flow.ignored.join(Tri::Maybe);
                }
                if pkt.forbidden.may() {
                    // The second GET of a forbidden pair draws an
                    // injected probe response: no clean claim left.
                    flow.tainted = true;
                }
                if monitored_must
                    && flags_normal
                    && pkt.wellformed_get.must()
                    && pkt.forbidden == Tri::No
                {
                    flow.gets_min += 1;
                    if flow.gets_min >= 2 {
                        flow.ignored = Tri::Yes;
                    }
                }
            }
        }
    }
}
