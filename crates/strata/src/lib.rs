//! `strata` — static analysis for Geneva strategies.
//!
//! Three passes over the `geneva::ast` tree, run before a strategy
//! ever reaches the simulator:
//!
//! 1. [`canonicalize`] rewrites a strategy to a normal form that
//!    preserves engine semantics byte-for-byte, collapsing dead
//!    subtrees and folding shadowed tampers, and exposes a stable
//!    [`CanonKey`] equivalence hash;
//! 2. [`lint`] emits a stream of [`Diagnostic`]s — machine-readable
//!    findings with severities, stable codes, and byte-offset spans
//!    into the strategy source;
//! 3. [`analyze`] combines both into the verdict the evolution
//!    harness consumes (canonical form + key + diagnostics + an
//!    is-it-even-worth-simulating flag).
//!
//! Underneath the lints sits [`absint`], an abstract interpreter with
//! two front ends: `FieldEffect` summaries over strategy trees (what
//! each emitted packet provably looks like) and a stack-machine
//! verifier over lowered `dplane` programs (no underflow, forward-only
//! control flow, bounded amplification). [`censor_model`] closes the
//! loop per censor: declarative abstract automata for the paper's four
//! censors plus a product-construction checker over the `absint`
//! summaries, yielding three-valued per-censor verdicts. [`report`]
//! renders the combined verdicts as text, JSON, or SARIF for
//! `cay verify`.

#![forbid(unsafe_code)]

pub mod absint;
pub mod canon;
pub mod censor_model;
pub mod diagnostics;
pub mod lints;
pub mod report;
pub mod unsafe_scan;

pub use absint::{
    summarize, verify_ops, AbsOp, OpsProof, PathEffect, StrategySummary, TamperKind, VerifyError,
};
pub use canon::{canonicalize, canonicalize_strategy, CanonKey};
pub use censor_model::{CensorId, Verdict};
pub use diagnostics::{line_col, Diagnostic, Severity};
pub use lints::{lint, lint_with_context, LintContext, AMPLIFICATION_LIMIT};
pub use report::{render_verdict_matrix, ProgramFacts, ReportEntry};
pub use unsafe_scan::{scan_unsafe, UnsafeFinding, UnsafeScanReport, UNSAFE_ALLOWLIST};

/// Everything the harness wants to know about a strategy before
/// spending simulator time on it.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The strategy rewritten to canonical form.
    pub canonical: geneva::Strategy,
    /// Equivalence-class hash of the canonical form.
    pub key: CanonKey,
    /// All lint findings, in source order.
    pub diagnostics: Vec<Diagnostic>,
    /// True when some `Severity::Error` diagnostic proves the strategy
    /// cannot possibly beat the identity strategy (e.g. it is a
    /// semantic no-op, or every emitted packet dies in transit).
    pub statically_futile: bool,
}

/// Run the full pipeline on one strategy.
pub fn analyze(strategy: &geneva::Strategy) -> Analysis {
    analyze_with_context(strategy, &LintContext::default())
}

/// Run the full pipeline with scenario context (country, protocol)
/// enabling the context-dependent lints.
pub fn analyze_with_context(strategy: &geneva::Strategy, ctx: &LintContext) -> Analysis {
    let canonical = canonicalize_strategy(strategy);
    let key = CanonKey::of(&canonical);
    let diagnostics = lint_with_context(strategy, ctx);
    let statically_futile = diagnostics
        .iter()
        .any(|d| d.severity == Severity::Error && d.proves_futile);
    Analysis {
        canonical,
        key,
        diagnostics,
        statically_futile,
    }
}
